//! Continual cross-hardware adaptation (ISSUE 8 acceptance).
//!
//! Four arms over one dataset (two known CPUs + the held-out Ryzen target):
//!
//! 1. **From-scratch baseline**: a fresh TLP trained on the target's *full*
//!    training collection — the paper's "collect a new dataset" cost.
//! 2. **Continual arm**: a 2-head MTL model trained only on the old CPUs,
//!    grown a third head, adapted online from fault-injected measurements
//!    capped at ≤ 10 % of the baseline's sample count, rehearsing old
//!    platforms from a stratified replay buffer.
//! 3. **Hot-swap arm**: the same loop publishing canary-gated snapshots
//!    into a live registry while reader threads score continuously — counts
//!    request failures (must be zero).
//! 4. **Reproducibility arm**: the continual loop re-run from the same
//!    seeds; parameters and report must match bitwise.
//!
//! Run with `cargo bench -p tlp-bench --bench continual_adapt`.
//! Writes `BENCH_continual.json`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers library crates (see clippy.toml)

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tlp::experiments::{eval_mtl_head, eval_tlp};
use tlp::{
    train_mtl_with, train_tlp, FeatureExtractor, MtlTlp, TlpConfig, TlpModel, TrainData,
    TrainOptions,
};
use tlp_bench::{print_table, write_json};
use tlp_continual::{
    run_continual, AdaptConfig, AdaptReport, CanarySet, ContinualConfig, PublishPolicy,
    ReplayBuffer, SnapshotPublisher,
};
use tlp_dataset::{generate_dataset_for, Dataset, DatasetConfig};
use tlp_hwsim::{FaultRates, Platform};
use tlp_serve::ModelRegistry;
use tlp_workload::bert_tiny;

const HOT_SWAP_READERS: usize = 2;
const FAULT_RATE: f64 = 0.05;

#[derive(Serialize)]
struct ContinualSummary {
    scratch_top1: f64,
    scratch_top5: f64,
    scratch_samples: usize,
    zero_shot_top1: f64,
    adapted_top1: f64,
    adapted_top5: f64,
    sample_efficiency_ratio: f64,
    measurements_used: u64,
    measurement_fraction: f64,
    measurements_failed: u64,
    retries: u64,
    forgetting_points: f64,
    baseline_old_top1: Vec<f64>,
    final_old_top1: Vec<f64>,
    publishes: usize,
    rollbacks: usize,
    hot_swap_batches: u64,
    hot_swap_failures: u64,
    bit_reproducible: bool,
    fault_rate: f64,
}

fn dataset() -> Dataset {
    generate_dataset_for(
        &[bert_tiny(1, 64)],
        &[bert_tiny(1, 128)],
        &[
            Platform::i7_10510u(),
            Platform::e5_2673(),
            Platform::ryzen_3950x(),
        ],
        &DatasetConfig {
            programs_per_task: 96,
            refined_fraction: 0.25,
            seed: 0xC0A7,
            ..DatasetConfig::default()
        },
    )
}

fn model_config() -> TlpConfig {
    TlpConfig {
        epochs: 6,
        ..TlpConfig::test_scale()
    }
}

/// Trains the 2-head base model on the old platforms and grows the target
/// head warm-started from the e5-2673 head (the nearest known CPU) — the
/// starting point of every continual arm.
fn grown_model(ds: &Dataset, ex: &FeatureExtractor, cfg: &TlpConfig) -> MtlTlp {
    let mut base = MtlTlp::new(cfg.clone(), 2);
    let data = [
        TrainData::from_dataset(ds, ex, 0),
        TrainData::from_dataset(ds, ex, 1),
    ];
    train_mtl_with(
        &mut base,
        &data,
        &TrainOptions::from_config(cfg).with_seed(0x0B),
    );
    base.grow_head_from(1)
}

fn replay_from(ds: &Dataset, ex: &FeatureExtractor) -> ReplayBuffer {
    let mut replay = ReplayBuffer::stratified(3, 17);
    replay.ingest_data(0, &TrainData::from_dataset(ds, ex, 0));
    replay.ingest_data(1, &TrainData::from_dataset(ds, ex, 1));
    replay
}

/// Loop config sized so the measurement budget stays ≤ 10 % of
/// `scratch_samples` by construction.
fn loop_config(cfg: &TlpConfig, scratch_samples: usize) -> ContinualConfig {
    let rounds = 4;
    let max_tasks = 3;
    let budget = scratch_samples / 10;
    let per_task_candidates = (budget / (rounds * max_tasks)).max(1);
    ContinualConfig {
        rounds,
        per_task_candidates,
        max_tasks,
        fault_rates: FaultRates::uniform(FAULT_RATE),
        measure: Default::default(),
        adapt: AdaptConfig::frozen(
            TrainOptions::from_config(cfg)
                .with_epochs(4)
                .with_batch_size(16)
                // Fine-tune gently: the head is warm-started, not cold.
                .with_learning_rate(1e-3)
                .with_seed(0x5EED),
        ),
        audit: true,
        seed: 0xADA7,
    }
}

fn store_bits(model: &MtlTlp) -> Vec<u32> {
    model
        .store
        .ids()
        .flat_map(|id| model.store.value(id).data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Runs the continual loop with live hot-swap publishing and concurrent
/// readers; returns the report plus (batches, failures) the readers saw.
fn hot_swap_arm(
    ds: &Dataset,
    ex: &FeatureExtractor,
    cfg: &TlpConfig,
    config: &ContinualConfig,
) -> (AdaptReport, MtlTlp, u64, u64) {
    let registry = Arc::new(ModelRegistry::default());
    let canaries = CanarySet::from_dataset(ds, 2, 0);
    let pool = canaries.first().expect("canary tasks exist").clone();
    let mut publisher = SnapshotPublisher::new(
        registry.clone(),
        "ryzen-3950x",
        2,
        PublishPolicy::default(),
        canaries,
    );
    let mut model = grown_model(ds, ex, cfg);
    let replay = replay_from(ds, ex);

    let done = AtomicBool::new(false);
    let batches = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let report = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..HOT_SWAP_READERS {
            let registry = Arc::clone(&registry);
            let (pool, done, batches, failures) = (&pool, &done, &batches, &failures);
            readers.push(s.spawn(move || {
                // The name appears after the first publish; only failures
                // *after* that count against the zero-failure requirement.
                let mut seen_installed = false;
                loop {
                    let stop = done.load(Ordering::SeqCst);
                    match registry.resolve_required("ryzen-3950x") {
                        Ok(version) => {
                            seen_installed = true;
                            let (scores, _) = version.score(&pool.task, &pool.schedules);
                            batches.fetch_add(1, Ordering::Relaxed);
                            if scores.iter().all(|sc| sc.is_none()) {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) if seen_installed => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {}
                    }
                    if stop {
                        break;
                    }
                }
            }));
        }
        let report = run_continual(&mut model, ex, ds, &replay, config, Some(&mut publisher))
            .expect("continual loop");
        done.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().expect("reader");
        }
        report
    });
    (
        report,
        model,
        batches.load(Ordering::Relaxed),
        failures.load(Ordering::Relaxed),
    )
}

fn main() {
    let ds = dataset();
    let cfg = model_config();
    let ex = FeatureExtractor::fit(&ds, cfg.seq_len, cfg.emb_size);

    // Arm 1: from-scratch baseline on the target's full collection.
    let scratch_data = TrainData::from_dataset(&ds, &ex, 2);
    let scratch_samples = scratch_data.num_samples();
    let mut scratch = TlpModel::new(cfg.clone());
    train_tlp(&mut scratch, &scratch_data);
    let (scratch_top1, scratch_top5) = eval_tlp(&scratch, &ex, &ds, 2);

    // Zero-shot transfer: the warm-started head before any measurement.
    let warm = grown_model(&ds, &ex, &cfg);
    let (zero_shot_top1, _) = eval_mtl_head(&warm, &ex, &ds, 2, 2);
    drop(warm);

    // Arms 2 + 3: continual adaptation with live hot-swap publishing.
    let config = loop_config(&cfg, scratch_samples);
    let (report, model, hot_swap_batches, hot_swap_failures) =
        hot_swap_arm(&ds, &ex, &cfg, &config);
    let (adapted_top1, adapted_top5) = eval_mtl_head(&model, &ex, &ds, 2, 2);

    // Arm 4: bit-reproducibility of the loop (publisher-free replays).
    let rerun = |_: usize| {
        let mut m = grown_model(&ds, &ex, &cfg);
        let replay = replay_from(&ds, &ex);
        let rep = run_continual(&mut m, &ex, &ds, &replay, &config, None).expect("replay loop");
        (
            store_bits(&m),
            serde_json::to_string(&rep).expect("serialize"),
        )
    };
    let (bits_a, rep_a) = rerun(0);
    let (bits_b, rep_b) = rerun(1);
    let bit_reproducible = bits_a == bits_b && rep_a == rep_b;

    let summary = ContinualSummary {
        scratch_top1,
        scratch_top5,
        scratch_samples,
        zero_shot_top1,
        adapted_top1,
        adapted_top5,
        sample_efficiency_ratio: adapted_top1 / scratch_top1.max(1e-9),
        measurements_used: report.measurements,
        measurement_fraction: report.measurements as f64 / scratch_samples.max(1) as f64,
        measurements_failed: report.measurements_failed,
        retries: report.retries,
        forgetting_points: report.forgetting_points,
        baseline_old_top1: report.baseline_old_top1.clone(),
        final_old_top1: report.final_old_top1.clone(),
        publishes: report.published,
        rollbacks: report.rolled_back,
        hot_swap_batches,
        hot_swap_failures,
        bit_reproducible,
        fault_rate: FAULT_RATE,
    };

    print_table(
        "continual adaptation vs from-scratch (target: ryzen-3950x)",
        &["metric", "value"],
        &[
            vec![
                "scratch top-1 (full data)".into(),
                format!("{scratch_top1:.3} ({scratch_samples} samples)"),
            ],
            vec![
                "zero-shot top-1 (warm start)".into(),
                format!("{zero_shot_top1:.3} (0 measurements)"),
            ],
            vec![
                "adapted top-1 (continual)".into(),
                format!(
                    "{adapted_top1:.3} ({} measurements, {:.1}% of scratch)",
                    summary.measurements_used,
                    summary.measurement_fraction * 100.0
                ),
            ],
            vec![
                "sample-efficiency ratio".into(),
                format!("{:.3}", summary.sample_efficiency_ratio),
            ],
            vec![
                "forgetting (points)".into(),
                format!("{:.3}", summary.forgetting_points),
            ],
            vec![
                "publishes / rollbacks".into(),
                format!("{} / {}", summary.publishes, summary.rollbacks),
            ],
            vec![
                "hot-swap batches / failures".into(),
                format!("{hot_swap_batches} / {hot_swap_failures}"),
            ],
            vec!["bit-reproducible".into(), format!("{bit_reproducible}")],
        ],
    );

    assert!(
        summary.measurement_fraction <= 0.101,
        "measurement budget exceeded: {:.3}",
        summary.measurement_fraction
    );
    assert_eq!(hot_swap_failures, 0, "hot swap surfaced request failures");
    assert!(bit_reproducible, "continual loop is not bit-reproducible");

    write_json("BENCH_continual", &summary);
}
