//! Paper Figure 6: distribution of schedule-primitive sequence lengths in
//! the CPU dataset.
//!
//! Run with `cargo bench -p tlp-bench --bench fig6_seq_len_distribution`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use tlp_bench::{bench_scale, write_json};
use tlp_dataset::{max_sequence_length, sequence_length_distribution};

fn main() {
    let scale = bench_scale("fig6_seq_len_distribution");
    let ds = scale.cpu_dataset();
    println!(
        "CPU dataset: {} tasks, {} programs",
        ds.tasks.len(),
        ds.num_programs()
    );

    let hist = sequence_length_distribution(&ds);
    let max_count = hist.iter().map(|&(_, c)| c).max().unwrap_or(1);
    println!("\n=== Figure 6: sequence-length distribution ===");
    for (len, count) in &hist {
        let bar = "#".repeat((58 * count).div_ceil(max_count));
        println!("len {len:>3}: {count:>7} {bar}");
    }
    println!(
        "\nmax sequence length: {} (paper: 54, with a dominant mode as in Fig. 6)",
        max_sequence_length(&ds)
    );

    write_json("fig6_seq_len_distribution", &hist);
}
