//! Paper Table 9: multi-task learning between architectures. Target Intel
//! i7-10510U; the auxiliary task is one of the other four CPUs.
//!
//! Paper result: same-ISA Intel auxiliaries (Platinum-8272, E5-2673) lift the
//! target most; AMD helps less; ARM least.
//!
//! Run with `cargo bench -p tlp-bench --bench table9_cross_arch`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use serde::Serialize;
use tlp::experiments::train_and_eval_mtl;
use tlp_bench::{bench_scale, print_table, write_json};

const TARGET_FRACTION: f64 = 0.08;

#[derive(Serialize)]
struct Row {
    aux: String,
    top1: f64,
    top5: f64,
}

fn main() {
    let scale = bench_scale("table9_cross_arch");
    let ds = scale.cpu_dataset();
    let target = ds.platform_index("i7-10510u").expect("target");
    let auxes = ["platinum-8272", "e5-2673", "epyc-7452", "graviton2"];

    // Single runs are seed-noisy at reduced scale; average over seeds so the
    // between-architecture differences are interpretable.
    const SEEDS: [u64; 3] = [0, 1, 2];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for aux_name in auxes {
        eprintln!("[table9] aux {aux_name} ({} seeds)…", SEEDS.len());
        let aux = ds.platform_index(aux_name).expect("aux platform");
        let mut t1_sum = 0.0;
        let mut t5_sum = 0.0;
        for s in SEEDS {
            let mut cfg = scale.tlp_config();
            cfg.seed ^= s.wrapping_mul(0x9E37_79B9);
            let (_, _, top1, top5) =
                train_and_eval_mtl(&ds, target, &[aux], cfg, &scale, TARGET_FRACTION);
            t1_sum += top1;
            t5_sum += top5;
        }
        let top1 = t1_sum / SEEDS.len() as f64;
        let top5 = t5_sum / SEEDS.len() as f64;
        rows.push(vec![
            format!("i7 small + {aux_name} ALL"),
            format!("{top1:.4}"),
            format!("{top5:.4}"),
        ]);
        json.push(Row {
            aux: aux_name.to_string(),
            top1,
            top5,
        });
    }
    print_table(
        "Table 9: MTL between architectures (target i7-10510U)",
        &["tasks", "top-1", "top-5"],
        &rows,
    );
    println!("\npaper shape: Intel auxiliaries (same ISA) > AMD > ARM");
    write_json("table9_cross_arch", &json);
}
