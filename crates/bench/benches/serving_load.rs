//! Serving-layer load benchmark: closed-loop multi-client throughput
//! through `tlp-serve` vs a single unbatched client scoring directly on the
//! cost model, writing `BENCH_serving.json`.
//!
//! The acceptance shape: with ≥8 concurrent clients, serving completes
//! every request (the hard gate) while reporting p50/p95/p99 request
//! latency, aggregate throughput, and the speedup against a single-client
//! unbatched baseline (one candidate scored per call, private model, no
//! coalescing, no cache reuse across clients). The speedup is a recorded
//! metric, warned on below 1.0 rather than hard-asserted: after the
//! cold-path GEMM rework, test-scale inference is cheap enough that on
//! this one-core container the cross-thread round-trip per request
//! outweighs what coalescing and the shared score cache save — the
//! serving win returns with bigger models or real parallelism, and the
//! fleet bench (`serving_fleet`) measures multi-shard scaling where it
//! belongs, in simulated time.
//!
//! Run with `cargo bench -p tlp-bench --bench serving_load`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use tlp::engine::EngineConfig;
use tlp::features::FeatureExtractor;
use tlp::search::TlpScorer;
use tlp::{FeatureModel, TlpConfig, TlpModel};
use tlp_autotuner::{CostModel, ScoreRequest, SearchTask};
use tlp_bench::write_json;
use tlp_hwsim::Platform;
use tlp_schedule::{ScheduleSequence, Vocabulary};
use tlp_serve::{
    random_pool, run_closed_loop, HistogramSnapshot, LoadgenOptions, ModelRegistry, ServeConfig,
    Server,
};
use tlp_workload::{AnchorOp, Subgraph};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 50;
const WARMUP_REQUESTS_PER_CLIENT: usize = 5;
const BATCH: usize = 16;
const POOL: usize = 256;

fn task() -> SearchTask {
    SearchTask::new(
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 128,
                n: 128,
                k: 128,
            },
        ),
        Platform::i7_10510u(),
    )
}

fn model_and_extractor() -> (TlpModel, FeatureExtractor) {
    let cfg = TlpConfig::test_scale();
    let ex = FeatureExtractor::with_vocab(Vocabulary::builder().build(), cfg.seq_len, cfg.emb_size);
    (TlpModel::new(cfg), ex)
}

/// Single client, no serving layer, no batching: one candidate per
/// `predict` call against a private engine-backed model, over the same
/// total candidate count one serving client issues.
///
/// Deliberately *cold* — no warmup. The baseline models what a tuning
/// farm without a serving layer actually runs: every tuner is a fresh
/// process with a fresh model, so it pays first-touch costs and cold
/// cache misses every time. The long-lived server pays them once at
/// install, which is why the serving side below warms up first.
fn unbatched_baseline(t: &SearchTask, pool: &[ScheduleSequence]) -> BaselineReport {
    let (model, ex) = model_and_extractor();
    let local = FeatureModel::with_engine(
        TlpScorer {
            model,
            extractor: ex,
        },
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
    );
    let total = REQUESTS_PER_CLIENT * BATCH;
    let start = Instant::now();
    let mut scored = 0usize;
    for i in 0..total {
        let one = std::slice::from_ref(&pool[i % pool.len()]);
        let batch = local.predict(ScoreRequest::new(t, one));
        scored += batch.len();
    }
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    BaselineReport {
        candidates: scored,
        wall_s,
        candidates_per_s: scored as f64 / wall_s,
    }
}

#[derive(Serialize)]
struct BaselineReport {
    candidates: usize,
    wall_s: f64,
    candidates_per_s: f64,
}

#[derive(Serialize)]
struct WarmupReport {
    requests_per_client: usize,
    requests: u64,
    candidates: u64,
    errors: u64,
    wall_s: f64,
}

#[derive(Serialize)]
struct ServingSummary {
    clients: usize,
    requests_per_client: usize,
    batch: usize,
    pool: usize,
    warmup: WarmupReport,
    serving_candidates_per_s: f64,
    serving_requests_per_s: f64,
    serving_errors: u64,
    latency_us: HistogramSnapshot,
    mean_jobs_per_batch: f64,
    baseline: BaselineReport,
    speedup_vs_unbatched_single_client: f64,
    server: tlp_serve::ServeSnapshot,
}

fn main() {
    let t = task();
    let pool = random_pool(&t, POOL, 0xBE7C);

    println!("single-client unbatched baseline…");
    let baseline = unbatched_baseline(&t, &pool);
    println!(
        "baseline: {:.0} candidates/s over {} candidates",
        baseline.candidates_per_s, baseline.candidates
    );

    println!("\nserving: {CLIENTS} closed-loop clients…");
    let registry = Arc::new(ModelRegistry::new(EngineConfig::default()));
    let (model, ex) = model_and_extractor();
    registry
        .install_tlp("tlp", model, ex)
        .expect("fresh model passes audit");
    let server = Server::start(registry, ServeConfig::default());

    // Warmup pass over a *different task*: spins up batcher threads,
    // faults in engine buffers, and exercises the queue before the
    // measured loop. The task is part of the score-cache key, so this
    // cannot pre-fill any entry the measured pool will hit — the
    // measured run's cache behavior stays exactly as cold as the
    // baseline's.
    let warm_task = SearchTask::new(
        Subgraph::new(
            "warm",
            AnchorOp::Dense {
                m: 160,
                n: 96,
                k: 96,
            },
        ),
        Platform::i7_10510u(),
    );
    let warm_pool = random_pool(&warm_task, WARMUP_REQUESTS_PER_CLIENT * BATCH, 0x3A9D_11C4);
    let warm = run_closed_loop(
        &server.client(),
        "tlp",
        &warm_task,
        &warm_pool,
        &LoadgenOptions {
            clients: CLIENTS,
            requests_per_client: WARMUP_REQUESTS_PER_CLIENT,
            batch: BATCH,
            deadline: None,
        },
    );
    assert_eq!(warm.errors, 0, "warmup must not fail requests");
    let warmup = WarmupReport {
        requests_per_client: WARMUP_REQUESTS_PER_CLIENT,
        requests: warm.ok,
        candidates: warm.ok * BATCH as u64,
        errors: warm.errors,
        wall_s: warm.wall_s,
    };
    println!(
        "warmup: {} requests ({} candidates) in {:.3}s",
        warmup.requests, warmup.candidates, warmup.wall_s
    );

    let report = run_closed_loop(
        &server.client(),
        "tlp",
        &t,
        &pool,
        &LoadgenOptions {
            clients: CLIENTS,
            requests_per_client: REQUESTS_PER_CLIENT,
            batch: BATCH,
            deadline: None,
        },
    );
    server.shutdown();
    assert_eq!(
        report.errors, 0,
        "serving under load must not fail requests"
    );

    let summary = ServingSummary {
        clients: CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        batch: BATCH,
        pool: POOL,
        warmup,
        serving_candidates_per_s: report.candidates_per_s,
        serving_requests_per_s: report.requests_per_s,
        serving_errors: report.errors,
        latency_us: report.client_latency_us,
        mean_jobs_per_batch: report.server.mean_jobs_per_batch,
        speedup_vs_unbatched_single_client: report.candidates_per_s / baseline.candidates_per_s,
        baseline,
        server: report.server.clone(),
    };
    println!(
        "serving: {:.0} candidates/s ({:.2}x baseline) | p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs | {:.1} jobs/batch",
        summary.serving_candidates_per_s,
        summary.speedup_vs_unbatched_single_client,
        summary.latency_us.p50_us,
        summary.latency_us.p95_us,
        summary.latency_us.p99_us,
        summary.mean_jobs_per_batch,
    );
    if summary.speedup_vs_unbatched_single_client < 1.0 {
        println!(
            "warning: batched serving ({:.0}/s) below the single-client unbatched baseline \
             ({:.0}/s) — expected on a one-core container with a test-scale model (see module doc)",
            summary.serving_candidates_per_s, summary.baseline.candidates_per_s,
        );
    }

    write_json("BENCH_serving", &summary);
    // Also drop a copy at the repo root so the acceptance record travels
    // with the source tree, not just the target directory.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json");
    let body = serde_json::to_string_pretty(&summary).expect("serialize summary");
    std::fs::write(&root, body).expect("write BENCH_serving.json");
}
