//! Paper Table 8: transfer-learning and self-supervised baselines vs MTL.
//! Target Intel i7-10510U (small labelled slice); source Intel E5-2673.
//!
//! Paper result: MTL (0.833) > fine-tuning (0.790) > GPT (0.686) > BERT
//! (0.632) — LM pretraining overfits at this feature scale.
//!
//! Run with `cargo bench -p tlp-bench --bench table8_transfer`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use serde::Serialize;
use tlp::experiments::{capped_train_tasks, eval_tlp, train_and_eval_mtl};
use tlp::features::FeatureExtractor;
use tlp::metrics::top_k_score;
use tlp::pretrain::{tokenize, PretrainConfig, PretrainKind, PretrainedLm};
use tlp::train::{train_tlp, TrainData};
use tlp::TlpModel;
use tlp_bench::{bench_scale, print_table, write_json};
use tlp_dataset::{Dataset, TaskData};
use tlp_schedule::Vocabulary;

const TARGET_FRACTION: f64 = 0.08;

#[derive(Serialize)]
struct Row {
    method: String,
    top1: f64,
    top5: f64,
}

fn lm_experiment(
    kind: PretrainKind,
    ds: &Dataset,
    target: usize,
    scale: &tlp::experiments::Scale,
) -> (f64, f64) {
    // Build the token vocabulary from the dataset's name parameters.
    let mut vb = Vocabulary::builder();
    for t in &ds.tasks {
        for r in &t.programs {
            for p in r.schedule.iter() {
                vb.observe(&p.stage);
                for v in &p.loop_vars {
                    vb.observe(v);
                }
                for e in &p.extras {
                    vb.observe(e);
                }
            }
        }
    }
    let vocab = vb.build();
    let cfg = PretrainConfig {
        epochs: 2,
        ..PretrainConfig::default()
    };

    // Unlabeled pretraining corpus: all target-platform schedules.
    let tasks = capped_train_tasks(ds, scale.max_train_tasks);
    let corpus: Vec<Vec<usize>> = tasks
        .iter()
        .flat_map(|t| {
            t.programs
                .iter()
                .map(|r| tokenize(&r.schedule, &vocab, &cfg))
        })
        .collect();
    let mut lm = PretrainedLm::new(kind, cfg.clone());
    eprintln!(
        "  pretraining {} ({} weights) on {} unlabeled sequences…",
        if kind == PretrainKind::Gpt {
            "GPT"
        } else {
            "BERT"
        },
        lm.num_weights(),
        corpus.len()
    );
    lm.pretrain(&corpus);

    // Fine-tune on the small labelled target slice (task-grouped rank loss).
    let mut rng_fraction = 0usize;
    let groups: Vec<(Vec<usize>, Vec<f32>)> = tasks
        .iter()
        .map(|t| {
            let labels = t.labels(target);
            let keep = ((labels.len() as f64) * TARGET_FRACTION).ceil() as usize;
            let mut toks = Vec::new();
            let mut labs = Vec::new();
            for (i, r) in t.programs.iter().enumerate().take(keep.max(2)) {
                toks.extend(tokenize(&r.schedule, &vocab, &cfg));
                labs.push(labels[i]);
                rng_fraction += 1;
            }
            (toks, labs)
        })
        .collect();
    eprintln!("  fine-tuning on {rng_fraction} labelled samples…");
    lm.fine_tune(&groups, scale.epochs.max(2));

    let scorer = |t: &TaskData| -> Vec<f32> {
        let mut toks = Vec::new();
        for r in &t.programs {
            toks.extend(tokenize(&r.schedule, &vocab, &cfg));
        }
        lm.predict(&toks)
    };
    (
        top_k_score(ds, target, 1, scorer),
        top_k_score(ds, target, 5, scorer),
    )
}

fn main() {
    let scale = bench_scale("table8_transfer");
    let ds = scale.cpu_dataset();
    let target = ds.platform_index("i7-10510u").expect("target");
    let source = ds.platform_index("e5-2673").expect("source");
    let cfg = scale.tlp_config();
    let extractor = FeatureExtractor::fit(&ds, cfg.seq_len, cfg.emb_size);
    let tasks = capped_train_tasks(&ds, scale.max_train_tasks);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut record = |method: &str, top1: f64, top5: f64| {
        rows.push(vec![
            method.to_string(),
            format!("{top1:.4}"),
            format!("{top5:.4}"),
        ]);
        json.push(Row {
            method: method.to_string(),
            top1,
            top5,
        });
    };

    // 1. Fine-tuning: pre-train on the source platform, fine-tune on the
    //    small target slice.
    eprintln!("[table8] fine-tuning…");
    let source_data = TrainData::from_tasks(&tasks, &extractor, source);
    let mut ft_model = TlpModel::new(cfg.clone());
    train_tlp(&mut ft_model, &source_data);
    let target_small =
        TrainData::from_tasks(&tasks, &extractor, target).subsample(TARGET_FRACTION, cfg.seed);
    let mut ft_cfg_model = ft_model;
    ft_cfg_model.config.epochs = (scale.epochs / 2).max(2);
    ft_cfg_model.config.learning_rate *= 0.3;
    train_tlp(&mut ft_cfg_model, &target_small);
    let (t1, t5) = eval_tlp(&ft_cfg_model, &extractor, &ds, target);
    record("Fine-tuning (E5 pre-train → i7 small)", t1, t5);

    // 2. MTL: i7 small + E5 all.
    eprintln!("[table8] MTL…");
    let (_, _, m1, m5) =
        train_and_eval_mtl(&ds, target, &[source], cfg.clone(), &scale, TARGET_FRACTION);
    record("MTL (i7 small + E5 ALL)", m1, m5);

    // 3/4. GPT and BERT pretraining on unlabeled target data.
    eprintln!("[table8] GPT…");
    let (g1, g5) = lm_experiment(PretrainKind::Gpt, &ds, target, &scale);
    record("GPT (unlabeled pre-train → i7 small)", g1, g5);

    eprintln!("[table8] BERT…");
    let (b1, b5) = lm_experiment(PretrainKind::Bert, &ds, target, &scale);
    record("BERT (unlabeled pre-train → i7 small)", b1, b5);

    print_table(
        "Table 8: transfer learning & self-supervised methods (target i7)",
        &["method", "top-1", "top-5"],
        &rows,
    );
    println!("\npaper shape: MTL > fine-tuning > GPT > BERT");
    write_json("table8_transfer", &json);
}
