//! Paper Table 5: TLP vs TenSet-MLP top-k scores on all seven hardware
//! platforms (5 CPUs + 2 GPUs).
//!
//! Paper result: TLP beats TenSet-MLP by a large margin on every CPU; on
//! GPUs the two trade blows, with TLP's top-5 more stable.
//!
//! Run with `cargo bench -p tlp-bench --bench table5_vs_tenset_mlp`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use serde::Serialize;
use tlp::experiments::{train_and_eval_tenset_mlp, train_and_eval_tlp};
use tlp_bench::{bench_scale, print_table, write_json};
use tlp_dataset::Dataset;

#[derive(Serialize)]
struct Row {
    platform: String,
    tenset_top1: f64,
    tenset_top5: f64,
    tlp_top1: f64,
    tlp_top5: f64,
}

fn eval_group(ds: &Dataset, scale: &tlp::experiments::Scale, rows: &mut Vec<Row>) {
    for (idx, platform) in ds.platforms.iter().enumerate() {
        eprintln!("[table5] platform {}…", platform.name);
        let cfg = scale.tlp_config();
        let (_, ts1, ts5) = train_and_eval_tenset_mlp(ds, idx, cfg.clone(), scale);
        let (_, _, tl1, tl5) = train_and_eval_tlp(ds, idx, cfg, scale, 1.0);
        rows.push(Row {
            platform: platform.name.clone(),
            tenset_top1: ts1,
            tenset_top5: ts5,
            tlp_top1: tl1,
            tlp_top5: tl5,
        });
    }
}

fn main() {
    let scale = bench_scale("table5_vs_tenset_mlp");
    let mut rows: Vec<Row> = Vec::new();

    let cpu = scale.cpu_dataset();
    println!("CPU dataset: {} programs", cpu.num_programs());
    eval_group(&cpu, &scale, &mut rows);
    drop(cpu);

    let gpu = scale.gpu_dataset();
    println!("GPU dataset: {} programs", gpu.num_programs());
    eval_group(&gpu, &scale, &mut rows);

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                format!("{:.4}", r.tenset_top1),
                format!("{:.4}", r.tenset_top5),
                format!("{:.4}", r.tlp_top1),
                format!("{:.4}", r.tlp_top5),
            ]
        })
        .collect();
    print_table(
        "Table 5: TLP vs TenSet-MLP on all platforms",
        &[
            "platform",
            "TenSet top-1",
            "TenSet top-5",
            "TLP top-1",
            "TLP top-5",
        ],
        &printable,
    );

    let cpu_wins = rows
        .iter()
        .take(5)
        .filter(|r| r.tlp_top1 > r.tenset_top1)
        .count();
    println!("\nTLP wins top-1 on {cpu_wins}/5 CPUs (paper: 5/5)");
    write_json("table5_vs_tenset_mlp", &rows);
}
