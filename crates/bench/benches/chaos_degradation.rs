//! Chaos degradation curve: tuning quality and measurement overhead as a
//! function of the injected hardware fault rate (ISSUE 5 acceptance).
//!
//! For each fault rate the same network is tuned with the same seed; only
//! the deterministic [`FaultModel`](tlp_hwsim::FaultModel) rates differ.
//! The table reports the tuning objective (final weighted workload
//! latency), its degradation versus the fault-free arm, and the price paid
//! in measurement budget: failed measurements, retries, per-class fault
//! events, and total search time (timeouts and retry backoff are charged to
//! the simulated clock, so overhead is visible even though faults are
//! injected, not real).
//!
//! Run with `cargo bench -p tlp-bench --bench chaos_degradation`.
//! Writes `BENCH_chaos.json`.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use serde::Serialize;
use tlp_autotuner::{tune_network, EvolutionConfig, RandomModel, TuningOptions, TuningReport};
use tlp_bench::{print_table, write_json};
use tlp_hwsim::{FaultRates, Platform};
use tlp_workload::bert_tiny;

#[derive(Serialize)]
struct ChaosRow {
    fault_rate: f64,
    final_latency_ms: f64,
    degradation_pct: f64,
    measurements: u64,
    measurements_failed: u64,
    retries: u64,
    fault_events: u64,
    build_errors: u64,
    timeouts: u64,
    device_resets: u64,
    outliers: u64,
    failed_rounds: u64,
    search_time_s: f64,
    overhead_pct: f64,
}

fn tune_at(rate: f64) -> TuningReport {
    let net = bert_tiny(1, 64);
    let mut model = RandomModel::new(5);
    let opts = TuningOptions {
        rounds: 16,
        programs_per_round: 4,
        evolution: EvolutionConfig {
            population: 24,
            generations: 1,
            ..EvolutionConfig::default()
        },
        nominal_pool: 10_000,
        seed: 0xC4A0,
        faults: FaultRates::uniform(rate),
        ..TuningOptions::default()
    };
    tune_network(&net, &Platform::i7_10510u(), &mut model, &opts)
}

fn main() {
    let rates = [0.0, 0.05, 0.1, 0.2];
    let reports: Vec<(f64, TuningReport)> = rates.iter().map(|&r| (r, tune_at(r))).collect();
    let baseline_latency = reports[0].1.final_latency_s();
    let baseline_time = reports[0].1.total_search_time_s();

    let rows: Vec<ChaosRow> = reports
        .iter()
        .map(|(rate, rep)| {
            let latency = rep.final_latency_s();
            assert!(latency.is_finite(), "rate {rate}: tuning found no schedule");
            ChaosRow {
                fault_rate: *rate,
                final_latency_ms: latency * 1e3,
                degradation_pct: (latency / baseline_latency - 1.0) * 100.0,
                measurements: rep.measurements,
                measurements_failed: rep.measurements_failed,
                retries: rep.retries,
                fault_events: rep.failures.total(),
                build_errors: rep.failures.build,
                timeouts: rep.failures.timeout,
                device_resets: rep.failures.device_reset,
                outliers: rep.failures.outlier,
                failed_rounds: rep.failed_rounds,
                search_time_s: rep.total_search_time_s(),
                overhead_pct: (rep.total_search_time_s() / baseline_time.max(1e-9) - 1.0) * 100.0,
            }
        })
        .collect();

    print_table(
        "tuning degradation vs injected fault rate",
        &[
            "rate",
            "final ms",
            "degrade %",
            "measured",
            "failed",
            "retries",
            "events",
            "bad rounds",
            "search s",
            "overhead %",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}", r.fault_rate),
                    format!("{:.4}", r.final_latency_ms),
                    format!("{:+.1}%", r.degradation_pct),
                    r.measurements.to_string(),
                    r.measurements_failed.to_string(),
                    r.retries.to_string(),
                    r.fault_events.to_string(),
                    r.failed_rounds.to_string(),
                    format!("{:.1}", r.search_time_s),
                    format!("{:+.1}%", r.overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );

    write_json("BENCH_chaos", &rows);
}
