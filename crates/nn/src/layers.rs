//! Neural network layers used by the TLP cost models.
//!
//! Layers own [`ParamId`]s registered in a [`ParamStore`]; their `forward`
//! methods run on a per-step [`Fwd`] context bundling the autograd tape,
//! the store, and the parameter binding.

use crate::graph::{Graph, Var};
use crate::init::{uniform, xavier_uniform};
use crate::params::{Binding, ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Forward-pass context: the tape, the parameter store, and the binding
/// that maps parameters to tape leaves.
#[derive(Debug)]
pub struct Fwd<'a> {
    /// The autograd tape for this step.
    pub g: &'a mut Graph,
    /// The model parameters.
    pub store: &'a ParamStore,
    /// The per-tape parameter binding cache.
    pub bind: &'a mut Binding,
}

impl<'a> Fwd<'a> {
    /// Creates a forward context.
    pub fn new(g: &'a mut Graph, store: &'a ParamStore, bind: &'a mut Binding) -> Self {
        Fwd { g, store, bind }
    }

    /// Binds a parameter into the tape.
    pub fn param(&mut self, id: ParamId) -> Var {
        self.bind.var(self.g, self.store, id)
    }
}

/// Fully connected layer `y = x·W + b` applied over the last axis.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a linear layer's parameters.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` of shape `[.., in_dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let shape = f.g.value(x).shape().to_vec();
        let last = *shape.last().expect("linear input must have rank >= 1");
        assert_eq!(last, self.in_dim, "linear input width mismatch");
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let x2 = f.g.reshape(x, &[rows, self.in_dim]);
        let w = f.param(self.w);
        let b = f.param(self.b);
        let y = f.g.matmul(x2, w);
        let y = f.g.add_bias(y, b);
        let mut out_shape = shape;
        *out_shape.last_mut().unwrap() = self.out_dim;
        f.g.reshape(y, &out_shape)
    }
}

/// Multi-head scaled-dot-product self-attention over `[N, L, E]` inputs.
///
/// One layer of this module is the paper's default backbone basic module
/// (TLP §4.4: a single self-attention layer with 8 heads suffices).
#[derive(Clone, Debug)]
pub struct MultiHeadSelfAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// Registers attention parameters; `dim` must be divisible by `heads`.
    ///
    /// # Panics
    ///
    /// Panics if `dim % heads != 0`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must be divisible by heads"
        );
        MultiHeadSelfAttention {
            q: Linear::new(store, rng, &format!("{name}.q"), dim, dim),
            k: Linear::new(store, rng, &format!("{name}.k"), dim, dim),
            v: Linear::new(store, rng, &format!("{name}.v"), dim, dim),
            out: Linear::new(store, rng, &format!("{name}.out"), dim, dim),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Applies self-attention to `x` of shape `[n, l, dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        self.forward_masked(f, x, None)
    }

    /// Applies self-attention with an optional additive attention mask of
    /// shape `[l, l]` (e.g. a causal mask with `-1e9` above the diagonal).
    pub fn forward_masked(&self, f: &mut Fwd<'_>, x: Var, mask: Option<&Tensor>) -> Var {
        let shape = f.g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "attention input must be [n, l, e]");
        let (n, l, e) = (shape[0], shape[1], shape[2]);
        assert_eq!(e, self.dim, "attention width mismatch");
        let h = self.heads;
        let dh = e / h;

        let q = self.q.forward(f, x);
        let k = self.k.forward(f, x);
        let v = self.v.forward(f, x);

        // [n, l, e] -> [n*h, l, dh]
        let split = |f: &mut Fwd<'_>, t: Var| {
            let t = f.g.reshape(t, &[n, l, h, dh]);
            let t = f.g.permute(t, &[0, 2, 1, 3]);
            f.g.reshape(t, &[n * h, l, dh])
        };
        let qs = split(f, q);
        let ks = split(f, k);
        let vs = split(f, v);

        let kt = f.g.permute(ks, &[0, 2, 1]); // [n*h, dh, l]
        let scores = f.g.bmm(qs, kt); // [n*h, l, l]
        let mut scores = f.g.scale(scores, 1.0 / (dh as f32).sqrt());
        if let Some(m) = mask {
            assert_eq!(m.shape(), &[l, l], "attention mask must be [l, l]");
            let mut tiled = Tensor::zeros(&[n * h, l, l]);
            for chunk in tiled.data_mut().chunks_mut(l * l) {
                chunk.copy_from_slice(m.data());
            }
            let mv = f.g.constant(tiled);
            scores = f.g.add(scores, mv);
        }
        let attn = f.g.softmax(scores);
        let ctx = f.g.bmm(attn, vs); // [n*h, l, dh]

        let ctx = f.g.reshape(ctx, &[n, h, l, dh]);
        let ctx = f.g.permute(ctx, &[0, 2, 1, 3]);
        let ctx = f.g.reshape(ctx, &[n, l, e]);
        self.out.forward(f, ctx)
    }
}

/// Single-layer LSTM over `[N, L, E]`, returning the full `[N, L, H]`
/// hidden-state sequence (the paper's alternative backbone basic module).
#[derive(Clone, Debug)]
pub struct Lstm {
    // Gate weights, one (Wx, Wh, b) triple per gate: input, forget, cell, output.
    wx: [ParamId; 4],
    wh: [ParamId; 4],
    b: [ParamId; 4],
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Registers LSTM parameters.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let gate_names = ["i", "f", "g", "o"];
        let mut wx = Vec::new();
        let mut wh = Vec::new();
        let mut b = Vec::new();
        for gn in gate_names {
            wx.push(store.add(
                format!("{name}.wx_{gn}"),
                xavier_uniform(rng, in_dim, hidden),
            ));
            wh.push(store.add(
                format!("{name}.wh_{gn}"),
                xavier_uniform(rng, hidden, hidden),
            ));
            // Forget gate bias starts positive to encourage gradient flow.
            let bias = if gn == "f" {
                Tensor::full(&[hidden], 1.0)
            } else {
                Tensor::zeros(&[hidden])
            };
            b.push(store.add(format!("{name}.b_{gn}"), bias));
        }
        Lstm {
            wx: [wx[0], wx[1], wx[2], wx[3]],
            wh: [wh[0], wh[1], wh[2], wh[3]],
            b: [b[0], b[1], b[2], b[3]],
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the recurrence over `x` of shape `[n, l, in_dim]`, producing `[n, l, hidden]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let shape = f.g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "lstm input must be [n, l, e]");
        let (n, l, e) = (shape[0], shape[1], shape[2]);
        assert_eq!(e, self.in_dim, "lstm input width mismatch");

        let mut h = f.g.constant(Tensor::zeros(&[n, self.hidden]));
        let mut c = f.g.constant(Tensor::zeros(&[n, self.hidden]));
        let mut outputs = Vec::with_capacity(l);
        for t in 0..l {
            let xt = f.g.select(x, 1, t); // [n, e]
            let gate = |f: &mut Fwd<'_>, gi: usize, xt: Var, h: Var| {
                let wx = f.param(self.wxs(gi));
                let wh = f.param(self.whs(gi));
                let b = f.param(self.bs(gi));
                let a = f.g.matmul(xt, wx);
                let bmm = f.g.matmul(h, wh);
                let s = f.g.add(a, bmm);
                f.g.add_bias(s, b)
            };
            let i_g = gate(f, 0, xt, h);
            let f_g = gate(f, 1, xt, h);
            let g_g = gate(f, 2, xt, h);
            let o_g = gate(f, 3, xt, h);
            let i_s = f.g.sigmoid(i_g);
            let f_s = f.g.sigmoid(f_g);
            let g_t = f.g.tanh(g_g);
            let o_s = f.g.sigmoid(o_g);
            let fc = f.g.mul(f_s, c);
            let ig = f.g.mul(i_s, g_t);
            c = f.g.add(fc, ig);
            let ct = f.g.tanh(c);
            h = f.g.mul(o_s, ct);
            outputs.push(h);
        }
        f.g.stack(&outputs, 1)
    }

    fn wxs(&self, i: usize) -> ParamId {
        self.wx[i]
    }
    fn whs(&self, i: usize) -> ParamId {
        self.wh[i]
    }
    fn bs(&self, i: usize) -> ParamId {
        self.b[i]
    }
}

/// Pre-activation residual block `y = x + W2·relu(W1·x)` followed by ReLU,
/// as used after the TLP backbone (paper Fig. 7: two residual blocks).
#[derive(Clone, Debug)]
pub struct ResidualBlock {
    l1: Linear,
    l2: Linear,
}

impl ResidualBlock {
    /// Registers a residual block of width `dim`.
    pub fn new(store: &mut ParamStore, rng: &mut SmallRng, name: &str, dim: usize) -> Self {
        ResidualBlock {
            l1: Linear::new(store, rng, &format!("{name}.l1"), dim, dim),
            l2: Linear::new(store, rng, &format!("{name}.l2"), dim, dim),
        }
    }

    /// Applies the block to `x` of shape `[.., dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let h = self.l1.forward(f, x);
        let h = f.g.relu(h);
        let h = self.l2.forward(f, h);
        let s = f.g.add(x, h);
        f.g.relu(s)
    }
}

/// Layer normalization with learnable affine parameters.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Registers layer-norm parameters of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: store.add(format!("{name}.gamma"), Tensor::full(&[dim], 1.0)),
            beta: store.add(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Normalizes over the last axis of `x`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let gamma = f.param(self.gamma);
        let beta = f.param(self.beta);
        f.g.layer_norm(x, gamma, beta, self.eps)
    }
}

/// Inverted-dropout layer; active only when `train` is true.
#[derive(Clone, Debug)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }

    /// Applies dropout using `rng` when `train`, otherwise the identity.
    pub fn forward(&self, f: &mut Fwd<'_>, rng: &mut SmallRng, x: Var, train: bool) -> Var {
        if !train || self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        let shape = f.g.value(x).shape().to_vec();
        let n: usize = shape.iter().product();
        let mask = Tensor::from_vec(
            (0..n)
                .map(|_| {
                    if rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
            &shape,
        );
        f.g.mask_mul(x, mask)
    }
}

/// Token embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    weight: ParamId,
    dim: usize,
}

impl Embedding {
    /// Registers an embedding table `[vocab, dim]`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let weight = store.add(format!("{name}.weight"), uniform(rng, &[vocab, dim], 0.1));
        Embedding { weight, dim }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, ids: &[usize]) -> Var {
        let w = f.param(self.weight);
        f.g.embedding(w, ids)
    }
}

/// A plain multi-layer perceptron with ReLU activations between layers.
///
/// The TenSet-MLP baseline (paper §2) is an instance of this.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Registers an MLP with the given layer widths, e.g. `[in, h1, h2, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(store: &mut ParamStore, rng: &mut SmallRng, name: &str, widths: &[usize]) -> Self {
        assert!(widths.len() >= 2, "mlp needs at least [in, out] widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP (ReLU between layers, none after the last).
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(f, h);
            if i + 1 < self.layers.len() {
                h = f.g.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> (Graph, ParamStore, Binding, SmallRng) {
        (
            Graph::new(),
            ParamStore::new(),
            Binding::new(),
            SmallRng::seed_from_u64(42),
        )
    }

    #[test]
    fn linear_shapes() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 7);
        let x = g.constant(Tensor::zeros(&[2, 5, 4]));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y = lin.forward(&mut f, x);
        assert_eq!(g.value(y).shape(), &[2, 5, 7]);
    }

    #[test]
    fn attention_shapes_and_grad_flow() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let attn = MultiHeadSelfAttention::new(&mut store, &mut rng, "a", 8, 2);
        let x = g.constant(uniform(&mut rng, &[3, 5, 8], 0.5));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            attn.forward(&mut f, x)
        };
        assert_eq!(g.value(y).shape(), &[3, 5, 8]);
        let loss = g.sum_all(y);
        g.backward(loss);
        bind.harvest(&g, &mut store);
        let total: f32 = store.ids().map(|id| store.grad(id).sq_norm()).sum();
        assert!(total > 0.0, "attention params should receive gradient");
    }

    #[test]
    fn lstm_shapes_and_grad_flow() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let lstm = Lstm::new(&mut store, &mut rng, "r", 6, 4);
        let x = g.constant(uniform(&mut rng, &[2, 3, 6], 0.5));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            lstm.forward(&mut f, x)
        };
        assert_eq!(g.value(y).shape(), &[2, 3, 4]);
        let loss = g.sum_all(y);
        g.backward(loss);
        bind.harvest(&g, &mut store);
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn residual_block_is_identity_preserving_at_zero() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let block = ResidualBlock::new(&mut store, &mut rng, "res", 4);
        // Zero the second linear layer so the block is exactly relu(x).
        for id in store.ids().collect::<Vec<_>>() {
            if store.name(id).contains("l2.w") {
                *store.value_mut(id) = Tensor::zeros(&[4, 4]);
            }
        }
        let x = g.constant(Tensor::from_vec(vec![1.0, -1.0, 2.0, -2.0], &[1, 4]));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y = block.forward(&mut f, x);
        assert_eq!(g.value(y).data(), &[1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_masks() {
        let (mut g, store, mut bind, mut rng) = ctx();
        let d = Dropout::new(0.5);
        let x = g.constant(Tensor::full(&[100], 1.0));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y_eval = d.forward(&mut f, &mut rng, x, false);
        assert_eq!(y_eval, x);
        let y_train = d.forward(&mut f, &mut rng, x, true);
        let data = g.value(y_train).data();
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 10 && zeros < 90, "mask should drop roughly half");
        // Kept units are scaled by 1/keep.
        assert!(data.iter().any(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn mlp_forward_width() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[10, 16, 16, 1]);
        let x = g.constant(Tensor::zeros(&[4, 10]));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y = mlp.forward(&mut f, x);
        assert_eq!(g.value(y).shape(), &[4, 1]);
    }
}
