//! Neural network layers used by the TLP cost models.
//!
//! Layers own [`ParamId`]s registered in a [`ParamStore`]; their `forward`
//! methods run on a per-step [`Fwd`] context bundling the autograd tape,
//! the store, and the parameter binding.

use crate::graph::{Graph, Var};
use crate::infer::Ragged;
use crate::init::{uniform, xavier_uniform};
use crate::kernels::{self, Epilogue};
use crate::params::{Binding, ParamId, ParamStore};
use crate::tensor::Tensor;
use crate::workspace::Arena;
use rand::rngs::SmallRng;
use rand::Rng;

/// Forward-pass context: the tape, the parameter store, and the binding
/// that maps parameters to tape leaves.
#[derive(Debug)]
pub struct Fwd<'a> {
    /// The autograd tape for this step.
    pub g: &'a mut Graph,
    /// The model parameters.
    pub store: &'a ParamStore,
    /// The per-tape parameter binding cache.
    pub bind: &'a mut Binding,
}

impl<'a> Fwd<'a> {
    /// Creates a forward context.
    pub fn new(g: &'a mut Graph, store: &'a ParamStore, bind: &'a mut Binding) -> Self {
        Fwd { g, store, bind }
    }

    /// Binds a parameter into the tape.
    pub fn param(&mut self, id: ParamId) -> Var {
        self.bind.var(self.g, self.store, id)
    }
}

/// Fully connected layer `y = x·W + b` applied over the last axis.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a linear layer's parameters.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` of shape `[.., in_dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let shape = f.g.value(x).shape().to_vec();
        let Some(&last) = shape.last() else {
            panic!("linear input must have rank >= 1");
        };
        assert_eq!(last, self.in_dim, "linear input width mismatch");
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let x2 = f.g.reshape(x, &[rows, self.in_dim]);
        let w = f.param(self.w);
        let b = f.param(self.b);
        let y = f.g.matmul(x2, w);
        let y = f.g.add_bias(y, b);
        let mut out_shape = shape;
        if let Some(d) = out_shape.last_mut() {
            *d = self.out_dim;
        }
        f.g.reshape(y, &out_shape)
    }

    /// Fused tape-free inference: `out = epilogue(x·W + b)` over `rows`
    /// rows of width `in_dim`, bit-identical to the `matmul → add_bias`
    /// (→ `relu`) tape sequence.
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatches.
    pub fn infer_rows(
        &self,
        store: &ParamStore,
        x: &[f32],
        rows: usize,
        out: &mut [f32],
        ep: Epilogue,
    ) {
        let w = store.value(self.w);
        let b = store.value(self.b);
        kernels::gemm_bias(
            x,
            w.data(),
            b.data(),
            out,
            rows,
            self.in_dim,
            self.out_dim,
            ep,
        );
    }
}

/// Multi-head scaled-dot-product self-attention over `[N, L, E]` inputs.
///
/// One layer of this module is the paper's default backbone basic module
/// (TLP §4.4: a single self-attention layer with 8 heads suffices).
#[derive(Clone, Debug)]
pub struct MultiHeadSelfAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// Registers attention parameters; `dim` must be divisible by `heads`.
    ///
    /// # Panics
    ///
    /// Panics if `dim % heads != 0`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must be divisible by heads"
        );
        MultiHeadSelfAttention {
            q: Linear::new(store, rng, &format!("{name}.q"), dim, dim),
            k: Linear::new(store, rng, &format!("{name}.k"), dim, dim),
            v: Linear::new(store, rng, &format!("{name}.v"), dim, dim),
            out: Linear::new(store, rng, &format!("{name}.out"), dim, dim),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model width (embedding dimension).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies self-attention to `x` of shape `[n, l, dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        self.forward_masked(f, x, None)
    }

    /// Applies self-attention with an optional additive attention mask of
    /// shape `[l, l]` (e.g. a causal mask with `-1e9` above the diagonal).
    pub fn forward_masked(&self, f: &mut Fwd<'_>, x: Var, mask: Option<&Tensor>) -> Var {
        let shape = f.g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "attention input must be [n, l, e]");
        let (n, l, e) = (shape[0], shape[1], shape[2]);
        assert_eq!(e, self.dim, "attention width mismatch");
        let h = self.heads;
        let dh = e / h;

        let q = self.q.forward(f, x);
        let k = self.k.forward(f, x);
        let v = self.v.forward(f, x);

        // [n, l, e] -> [n*h, l, dh]
        let split = |f: &mut Fwd<'_>, t: Var| {
            let t = f.g.reshape(t, &[n, l, h, dh]);
            let t = f.g.permute(t, &[0, 2, 1, 3]);
            f.g.reshape(t, &[n * h, l, dh])
        };
        let qs = split(f, q);
        let ks = split(f, k);
        let vs = split(f, v);

        let kt = f.g.permute(ks, &[0, 2, 1]); // [n*h, dh, l]
        let scores = f.g.bmm(qs, kt); // [n*h, l, l]
        let scale = 1.0 / (dh as f32).sqrt();
        let attn = if let Some(m) = mask {
            assert_eq!(m.shape(), &[l, l], "attention mask must be [l, l]");
            let scores = f.g.scale(scores, scale);
            let mut tiled = Tensor::zeros(&[n * h, l, l]);
            for chunk in tiled.data_mut().chunks_mut(l * l) {
                chunk.copy_from_slice(m.data());
            }
            let mv = f.g.constant(tiled);
            let masked = f.g.add(scores, mv);
            f.g.softmax(masked)
        } else {
            // Unmasked hot path: one fused node, bit-identical to
            // scale → softmax.
            f.g.scaled_softmax(scores, scale)
        };
        let ctx = f.g.bmm(attn, vs); // [n*h, l, dh]

        let ctx = f.g.reshape(ctx, &[n, h, l, dh]);
        let ctx = f.g.permute(ctx, &[0, 2, 1, 3]);
        let ctx = f.g.reshape(ctx, &[n, l, e]);
        self.out.forward(f, ctx)
    }

    /// Fused tape-free self-attention over a compact tail-padded batch.
    ///
    /// `x` holds the `R` real rows (candidate-major, `R` =
    /// `ragged.total_rows()`); `x_pad` is the shared padding row every
    /// candidate's tail repeats. `out` receives `R + C` rows: the attention
    /// output (including the output projection) for each real row, then one
    /// pad-row output per candidate — pad queries are identical within a
    /// candidate, so their shared output is computed once.
    ///
    /// Bit-identical to [`MultiHeadSelfAttention::forward`] on the dense
    /// `[C, l, dim]` tensor: scores, softmax, and weighted sums replay the
    /// same f32 operations in the same order, with the padding tail's
    /// repeated values computed once and re-added per position (see
    /// [`crate::infer`] for the argument).
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatches.
    pub fn infer_ragged(
        &self,
        store: &ParamStore,
        arena: &mut Arena,
        x: &[f32],
        x_pad: &[f32],
        ragged: &Ragged<'_>,
        out: &mut [f32],
    ) {
        let e = self.dim;
        let h = self.heads;
        let dh = e / h;
        let r = ragged.total_rows();
        let c = ragged.candidates();
        let l = ragged.seq_len();
        assert_eq!(x.len(), r * e, "compact input length mismatch");
        assert_eq!(x_pad.len(), e, "pad row length mismatch");
        assert_eq!(out.len(), (r + c) * e, "output length mismatch");

        let mut q = arena.take(r * e);
        let mut k = arena.take(r * e);
        let mut v = arena.take(r * e);
        self.q.infer_rows(store, x, r, &mut q, Epilogue::Bias);
        self.k.infer_rows(store, x, r, &mut k, Epilogue::Bias);
        self.v.infer_rows(store, x, r, &mut v, Epilogue::Bias);
        let mut q_pad = arena.take(e);
        let mut k_pad = arena.take(e);
        let mut v_pad = arena.take(e);
        self.q
            .infer_rows(store, x_pad, 1, &mut q_pad, Epilogue::Bias);
        self.k
            .infer_rows(store, x_pad, 1, &mut k_pad, Epilogue::Bias);
        self.v
            .infer_rows(store, x_pad, 1, &mut v_pad, Epilogue::Bias);

        let mut ctx = arena.take((r + c) * e);
        // Head-major packing scratch, sized for the longest candidate
        // (`l` real rows plus the shared pad row/query).
        let mut kh = arena.take((l + 1) * e);
        let mut qt = arena.take((l + 1) * e);
        let mut vt = arena.take(l * e);
        let mut st = arena.take((l + 1) * (l + 1));
        let mut ot = arena.take(dh * (l + 1));
        let mut pt = arena.take(dh * (l + 1));
        let mut mx = arena.take(l + 1);
        let mut sm = arena.take(l + 1);
        let scale = 1.0 / (dh as f32).sqrt();

        let mut base = 0usize;
        for (i, &ru) in ragged.rows_used().iter().enumerate() {
            let kc = &k[base * e..(base + ru) * e];
            let vc = &v[base * e..(base + ru) * e];
            let nq = ru + 1; // real query rows plus the candidate's pad query
            let nk = ru + 1; // real keys plus the shared pad key

            // Pack this candidate head-major so both attention matmuls run
            // through the register-blocked [`kernels::gemm`]:
            //   kh[t]: [nk, dh]  real keys then the pad key;
            //   qt[t]: [dh, nq]  queries transposed, pad query last;
            //   vt[t]: [dh, ru]  values transposed.
            for t in 0..h {
                let ho = t * dh;
                let khh = &mut kh[t * nk * dh..(t + 1) * nk * dh];
                for (kidx, krow) in kc.chunks_exact(e).enumerate() {
                    khh[kidx * dh..(kidx + 1) * dh].copy_from_slice(&krow[ho..ho + dh]);
                }
                khh[ru * dh..].copy_from_slice(&k_pad[ho..ho + dh]);
                let qth = &mut qt[t * dh * nq..(t + 1) * dh * nq];
                for j in 0..ru {
                    let qrow = &q[(base + j) * e + ho..(base + j) * e + ho + dh];
                    for (d, &qv) in qrow.iter().enumerate() {
                        qth[d * nq + j] = qv;
                    }
                }
                for d in 0..dh {
                    qth[d * nq + ru] = q_pad[ho + d];
                }
                let vth = &mut vt[t * dh * ru..(t + 1) * dh * ru];
                for (kidx, vrow) in vc.chunks_exact(e).enumerate() {
                    for (d, &vv) in vrow[ho..ho + dh].iter().enumerate() {
                        vth[d * ru + kidx] = vv;
                    }
                }
            }

            for t in 0..h {
                let ho = t * dh;
                let khh = &kh[t * nk * dh..(t + 1) * nk * dh];
                let qth = &qt[t * dh * nq..(t + 1) * dh * nq];
                let vth = &vt[t * dh * ru..(t + 1) * dh * ru];
                // Transposed scores st[key][query] = k·q, each element
                // accumulated d-ascending like the dense bmm (f32 `mul` is
                // operand-order insensitive, so k·q ≡ q·k bitwise). The pad
                // key lands in row `ru`, the pad query in column `ru`.
                kernels::gemm(khh, qth, &mut st[..nk * nq], nk, dh, nq);
                for s in st[..nk * nq].iter_mut() {
                    *s *= scale;
                }
                // Per-query softmax down each column, all queries advanced
                // together so every non-exp pass vectorizes across the `nq`
                // lanes. Each lane replays the dense row's order — max fold
                // and sum k-ascending, the `l - ru` identical tail terms
                // deduplicated (the tail exp is added once per position) —
                // and leaves the tail weight `a_pad` in the pad-key row.
                softmax_cols(&mut st[..nk * nq], &mut mx[..nq], &mut sm[..nq], nq, ru, l);
                // Weighted value sum over the real keys, k-ascending from
                // +0.0 — the pad-key row is excluded from the matmul...
                kernels::gemm(vth, &st[..ru * nq], &mut ot[..dh * nq], dh, ru, nq);
                // ...and its term, computed once per query, is re-added per
                // tail position, as the dense loop would (each element's
                // chain still receives its identical pad term `l - ru`
                // times after the real keys).
                for d in 0..dh {
                    let pv = v_pad[ho + d];
                    for (p, &a) in pt[d * nq..(d + 1) * nq]
                        .iter_mut()
                        .zip(&st[ru * nq..nk * nq])
                    {
                        *p = a * pv;
                    }
                }
                for _ in ru..l {
                    for (o, &p) in ot[..dh * nq].iter_mut().zip(&pt[..dh * nq]) {
                        *o += p;
                    }
                }
                // Scatter the head block back to row-major context rows.
                for j in 0..ru {
                    let row = base + j;
                    for d in 0..dh {
                        ctx[row * e + ho + d] = ot[d * nq + j];
                    }
                }
                for d in 0..dh {
                    ctx[(r + i) * e + ho + d] = ot[d * nq + ru];
                }
            }
            base += ru;
        }

        self.out.infer_rows(store, &ctx, r + c, out, Epilogue::Bias);

        arena.give(sm);
        arena.give(mx);
        arena.give(pt);
        arena.give(ot);
        arena.give(st);
        arena.give(vt);
        arena.give(qt);
        arena.give(kh);
        arena.give(ctx);
        arena.give(v_pad);
        arena.give(k_pad);
        arena.give(q_pad);
        arena.give(v);
        arena.give(k);
        arena.give(q);
    }
}

/// Softmax down every column of the transposed score matrix `st`
/// (`nq` query columns; `ru` real-key rows plus the pad-key row at index
/// `ru`), normalizing each column in place over its dense row
/// `[s_0 .. s_{ru-1}, s_pad × (l - ru)]`. Columns advance together so the
/// max/sum/normalize passes vectorize across query lanes, while each
/// lane's fold order stays exactly the dense row's: max then sum in
/// k-ascending order, the tail's (identical) exp value added once per
/// position. The pad-key row is overwritten with the tail weight `a_pad`
/// for the caller's tail re-add. `mx` and `sum` are caller scratch.
fn softmax_cols(st: &mut [f32], mx: &mut [f32], sum: &mut [f32], nq: usize, ru: usize, l: usize) {
    mx.fill(f32::NEG_INFINITY);
    for row in st[..ru * nq].chunks_exact(nq) {
        for (m, &s) in mx.iter_mut().zip(row) {
            *m = m.max(s);
        }
    }
    if ru < l {
        for (m, &s) in mx.iter_mut().zip(&st[ru * nq..(ru + 1) * nq]) {
            *m = m.max(s);
        }
    }
    sum.fill(0.0);
    for row in st[..ru * nq].chunks_exact_mut(nq) {
        for ((s, &m), acc) in row.iter_mut().zip(mx.iter()).zip(sum.iter_mut()) {
            *s = (*s - m).exp();
            *acc += *s;
        }
    }
    // The pad row becomes e_pad, counted once per tail position.
    for (s, &m) in st[ru * nq..(ru + 1) * nq].iter_mut().zip(mx.iter()) {
        *s = (*s - m).exp();
    }
    for _ in ru..l {
        for (acc, &e) in sum.iter_mut().zip(&st[ru * nq..(ru + 1) * nq]) {
            *acc += e;
        }
    }
    for (m, &acc) in mx.iter_mut().zip(sum.iter()) {
        *m = 1.0 / acc; // reuse mx as the reciprocal-sum lane buffer
    }
    for row in st[..(ru + 1) * nq].chunks_exact_mut(nq) {
        for (s, &inv) in row.iter_mut().zip(mx.iter()) {
            *s *= inv;
        }
    }
}

/// Single-layer LSTM over `[N, L, E]`, returning the full `[N, L, H]`
/// hidden-state sequence (the paper's alternative backbone basic module).
#[derive(Clone, Debug)]
pub struct Lstm {
    // Gate weights, one (Wx, Wh, b) triple per gate: input, forget, cell, output.
    wx: [ParamId; 4],
    wh: [ParamId; 4],
    b: [ParamId; 4],
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Registers LSTM parameters.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let gate_names = ["i", "f", "g", "o"];
        let mut wx = Vec::new();
        let mut wh = Vec::new();
        let mut b = Vec::new();
        for gn in gate_names {
            wx.push(store.add(
                format!("{name}.wx_{gn}"),
                xavier_uniform(rng, in_dim, hidden),
            ));
            wh.push(store.add(
                format!("{name}.wh_{gn}"),
                xavier_uniform(rng, hidden, hidden),
            ));
            // Forget gate bias starts positive to encourage gradient flow.
            let bias = if gn == "f" {
                Tensor::full(&[hidden], 1.0)
            } else {
                Tensor::zeros(&[hidden])
            };
            b.push(store.add(format!("{name}.b_{gn}"), bias));
        }
        Lstm {
            wx: [wx[0], wx[1], wx[2], wx[3]],
            wh: [wh[0], wh[1], wh[2], wh[3]],
            b: [b[0], b[1], b[2], b[3]],
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the recurrence over `x` of shape `[n, l, in_dim]`, producing `[n, l, hidden]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let shape = f.g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "lstm input must be [n, l, e]");
        let (n, l, e) = (shape[0], shape[1], shape[2]);
        assert_eq!(e, self.in_dim, "lstm input width mismatch");

        let mut h = f.g.constant(Tensor::zeros(&[n, self.hidden]));
        let mut c = f.g.constant(Tensor::zeros(&[n, self.hidden]));
        let mut outputs = Vec::with_capacity(l);
        for t in 0..l {
            let xt = f.g.select(x, 1, t); // [n, e]
            let gate = |f: &mut Fwd<'_>, gi: usize, xt: Var, h: Var| {
                let wx = f.param(self.wxs(gi));
                let wh = f.param(self.whs(gi));
                let b = f.param(self.bs(gi));
                let a = f.g.matmul(xt, wx);
                let bmm = f.g.matmul(h, wh);
                let s = f.g.add(a, bmm);
                f.g.add_bias(s, b)
            };
            let i_g = gate(f, 0, xt, h);
            let f_g = gate(f, 1, xt, h);
            let g_g = gate(f, 2, xt, h);
            let o_g = gate(f, 3, xt, h);
            let i_s = f.g.sigmoid(i_g);
            let f_s = f.g.sigmoid(f_g);
            let g_t = f.g.tanh(g_g);
            let o_s = f.g.sigmoid(o_g);
            let fc = f.g.mul(f_s, c);
            let ig = f.g.mul(i_s, g_t);
            c = f.g.add(fc, ig);
            let ct = f.g.tanh(c);
            h = f.g.mul(o_s, ct);
            outputs.push(h);
        }
        f.g.stack(&outputs, 1)
    }

    fn wxs(&self, i: usize) -> ParamId {
        self.wx[i]
    }
    fn whs(&self, i: usize) -> ParamId {
        self.wh[i]
    }
    fn bs(&self, i: usize) -> ParamId {
        self.b[i]
    }
}

/// Pre-activation residual block `y = x + W2·relu(W1·x)` followed by ReLU,
/// as used after the TLP backbone (paper Fig. 7: two residual blocks).
#[derive(Clone, Debug)]
pub struct ResidualBlock {
    l1: Linear,
    l2: Linear,
}

impl ResidualBlock {
    /// Registers a residual block of width `dim`.
    pub fn new(store: &mut ParamStore, rng: &mut SmallRng, name: &str, dim: usize) -> Self {
        ResidualBlock {
            l1: Linear::new(store, rng, &format!("{name}.l1"), dim, dim),
            l2: Linear::new(store, rng, &format!("{name}.l2"), dim, dim),
        }
    }

    /// Applies the block to `x` of shape `[.., dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let h = self.l1.forward(f, x);
        let h = f.g.relu(h);
        let h = self.l2.forward(f, h);
        let s = f.g.add(x, h);
        f.g.relu(s)
    }

    /// Fused tape-free inference, transforming `rows` rows of `x` in
    /// place; bit-identical to [`ResidualBlock::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows * dim`.
    pub fn infer_rows(&self, store: &ParamStore, arena: &mut Arena, x: &mut [f32], rows: usize) {
        let dim = self.l1.in_dim();
        assert_eq!(x.len(), rows * dim, "residual input length mismatch");
        let mut h1 = arena.take(rows * dim);
        let mut h2 = arena.take(rows * dim);
        self.l1
            .infer_rows(store, x, rows, &mut h1, Epilogue::BiasRelu);
        self.l2
            .infer_rows(store, &h1, rows, &mut h2, Epilogue::Bias);
        for (xv, &hv) in x.iter_mut().zip(h2.iter()) {
            *xv = (*xv + hv).max(0.0);
        }
        arena.give(h2);
        arena.give(h1);
    }
}

/// Layer normalization with learnable affine parameters.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Registers layer-norm parameters of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: store.add(format!("{name}.gamma"), Tensor::full(&[dim], 1.0)),
            beta: store.add(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Normalizes over the last axis of `x`.
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let gamma = f.param(self.gamma);
        let beta = f.param(self.beta);
        f.g.layer_norm(x, gamma, beta, self.eps)
    }

    /// Fused tape-free inference, normalizing each width-`dim` row of `x`
    /// in place; bit-identical to [`LayerNorm::forward`] (both call
    /// [`kernels::layer_norm_row`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of the layer width.
    pub fn infer_rows(&self, store: &ParamStore, x: &mut [f32]) {
        let gamma = store.value(self.gamma);
        let beta = store.value(self.beta);
        let d = gamma.data().len();
        assert_eq!(x.len() % d, 0, "layer_norm input length mismatch");
        for row in x.chunks_exact_mut(d) {
            kernels::layer_norm_row(row, gamma.data(), beta.data(), self.eps);
        }
    }
}

/// Inverted-dropout layer; active only when `train` is true.
#[derive(Clone, Debug)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }

    /// Applies dropout using `rng` when `train`, otherwise the identity.
    pub fn forward(&self, f: &mut Fwd<'_>, rng: &mut SmallRng, x: Var, train: bool) -> Var {
        if !train || self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        let shape = f.g.value(x).shape().to_vec();
        let n: usize = shape.iter().product();
        let mask = Tensor::from_vec(
            (0..n)
                .map(|_| {
                    if rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
            &shape,
        );
        f.g.mask_mul(x, mask)
    }
}

/// Token embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    weight: ParamId,
    dim: usize,
}

impl Embedding {
    /// Registers an embedding table `[vocab, dim]`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut SmallRng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let weight = store.add(format!("{name}.weight"), uniform(rng, &[vocab, dim], 0.1));
        Embedding { weight, dim }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`.
    pub fn forward(&self, f: &mut Fwd<'_>, ids: &[usize]) -> Var {
        let w = f.param(self.weight);
        f.g.embedding(w, ids)
    }
}

/// A plain multi-layer perceptron with ReLU activations between layers.
///
/// The TenSet-MLP baseline (paper §2) is an instance of this.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Registers an MLP with the given layer widths, e.g. `[in, h1, h2, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(store: &mut ParamStore, rng: &mut SmallRng, name: &str, widths: &[usize]) -> Self {
        assert!(widths.len() >= 2, "mlp needs at least [in, out] widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP (ReLU between layers, none after the last).
    pub fn forward(&self, f: &mut Fwd<'_>, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(f, h);
            if i + 1 < self.layers.len() {
                h = f.g.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> (Graph, ParamStore, Binding, SmallRng) {
        (
            Graph::new(),
            ParamStore::new(),
            Binding::new(),
            SmallRng::seed_from_u64(42),
        )
    }

    #[test]
    fn linear_shapes() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 7);
        let x = g.constant(Tensor::zeros(&[2, 5, 4]));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y = lin.forward(&mut f, x);
        assert_eq!(g.value(y).shape(), &[2, 5, 7]);
    }

    #[test]
    fn attention_shapes_and_grad_flow() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let attn = MultiHeadSelfAttention::new(&mut store, &mut rng, "a", 8, 2);
        let x = g.constant(uniform(&mut rng, &[3, 5, 8], 0.5));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            attn.forward(&mut f, x)
        };
        assert_eq!(g.value(y).shape(), &[3, 5, 8]);
        let loss = g.sum_all(y);
        g.backward(loss);
        bind.harvest(&g, &mut store);
        let total: f32 = store.ids().map(|id| store.grad(id).sq_norm()).sum();
        assert!(total > 0.0, "attention params should receive gradient");
    }

    #[test]
    fn lstm_shapes_and_grad_flow() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let lstm = Lstm::new(&mut store, &mut rng, "r", 6, 4);
        let x = g.constant(uniform(&mut rng, &[2, 3, 6], 0.5));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            lstm.forward(&mut f, x)
        };
        assert_eq!(g.value(y).shape(), &[2, 3, 4]);
        let loss = g.sum_all(y);
        g.backward(loss);
        bind.harvest(&g, &mut store);
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn residual_block_is_identity_preserving_at_zero() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let block = ResidualBlock::new(&mut store, &mut rng, "res", 4);
        // Zero the second linear layer so the block is exactly relu(x).
        for id in store.ids().collect::<Vec<_>>() {
            if store.name(id).contains("l2.w") {
                *store.value_mut(id) = Tensor::zeros(&[4, 4]);
            }
        }
        let x = g.constant(Tensor::from_vec(vec![1.0, -1.0, 2.0, -2.0], &[1, 4]));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y = block.forward(&mut f, x);
        assert_eq!(g.value(y).data(), &[1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_masks() {
        let (mut g, store, mut bind, mut rng) = ctx();
        let d = Dropout::new(0.5);
        let x = g.constant(Tensor::full(&[100], 1.0));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y_eval = d.forward(&mut f, &mut rng, x, false);
        assert_eq!(y_eval, x);
        let y_train = d.forward(&mut f, &mut rng, x, true);
        let data = g.value(y_train).data();
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 10 && zeros < 90, "mask should drop roughly half");
        // Kept units are scaled by 1/keep.
        assert!(data.iter().any(|&v| (v - 2.0).abs() < 1e-6));
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}");
        }
    }

    #[test]
    fn linear_infer_rows_matches_tape_bitwise() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let lin = Linear::new(&mut store, &mut rng, "l", 6, 9);
        let data: Vec<f32> = (0..5 * 6).map(|_| rng.gen::<f32>() - 0.5).collect();
        let x = g.constant(Tensor::from_vec(data.clone(), &[5, 6]));
        let (plain, relu) = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            let y = lin.forward(&mut f, x);
            let r = f.g.relu(y);
            (y, r)
        };
        let mut out = vec![0.0f32; 5 * 9];
        lin.infer_rows(&store, &data, 5, &mut out, Epilogue::Bias);
        assert_bits_eq(&out, g.value(plain).data(), "linear bias");
        lin.infer_rows(&store, &data, 5, &mut out, Epilogue::BiasRelu);
        assert_bits_eq(&out, g.value(relu).data(), "linear bias+relu");
    }

    #[test]
    fn residual_infer_rows_matches_tape_bitwise() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let block = ResidualBlock::new(&mut store, &mut rng, "res", 8);
        let data: Vec<f32> = (0..4 * 8).map(|_| rng.gen::<f32>() - 0.5).collect();
        let x = g.constant(Tensor::from_vec(data.clone(), &[4, 8]));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            block.forward(&mut f, x)
        };
        let mut buf = data;
        let mut arena = Arena::new();
        block.infer_rows(&store, &mut arena, &mut buf, 4);
        assert_bits_eq(&buf, g.value(y).data(), "residual block");
    }

    #[test]
    fn layer_norm_infer_rows_matches_tape_bitwise() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let ln = LayerNorm::new(&mut store, "ln", 7);
        let data: Vec<f32> = (0..3 * 7).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
        let x = g.constant(Tensor::from_vec(data.clone(), &[3, 7]));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            ln.forward(&mut f, x)
        };
        let mut buf = data;
        ln.infer_rows(&store, &mut buf);
        assert_bits_eq(&buf, g.value(y).data(), "layer norm");
    }

    #[test]
    fn ragged_attention_matches_dense_forward_bitwise() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let e = 8;
        let heads = 2;
        let l = 5;
        let attn = MultiHeadSelfAttention::new(&mut store, &mut rng, "a", e, heads);
        // Mix of tail lengths, including empty (all-pad) and full rows.
        let rows_used = [3usize, 0, 5, 1];
        let n = rows_used.len();
        // Nonzero shared pad row, as produced by upsampling an all-zero
        // feature row through biased linears.
        let x_pad: Vec<f32> = (0..e).map(|_| rng.gen::<f32>() * 0.25).collect();
        let mut dense = vec![0.0f32; n * l * e];
        let mut compact = Vec::new();
        for (i, &ru) in rows_used.iter().enumerate() {
            for j in 0..l {
                for d in 0..e {
                    let val = if j < ru {
                        let val = rng.gen::<f32>() - 0.5;
                        compact.push(val);
                        val
                    } else {
                        x_pad[d]
                    };
                    dense[(i * l + j) * e + d] = val;
                }
            }
        }
        let x = g.constant(Tensor::from_vec(dense, &[n, l, e]));
        let y = {
            let mut f = Fwd::new(&mut g, &store, &mut bind);
            attn.forward(&mut f, x)
        };
        let yd = g.value(y).data().to_vec();

        let ragged = Ragged::new(&rows_used, l);
        let r = ragged.total_rows();
        let mut out = vec![0.0f32; (r + n) * e];
        let mut arena = Arena::new();
        attn.infer_ragged(&store, &mut arena, &compact, &x_pad, &ragged, &mut out);

        let mut base = 0usize;
        for (i, &ru) in rows_used.iter().enumerate() {
            for j in 0..l {
                let dense_row = &yd[(i * l + j) * e..(i * l + j + 1) * e];
                let fused_row = if j < ru {
                    &out[(base + j) * e..(base + j + 1) * e]
                } else {
                    &out[(r + i) * e..(r + i + 1) * e]
                };
                assert_bits_eq(dense_row, fused_row, "attention row");
            }
            base += ru;
        }
    }

    #[test]
    fn mlp_forward_width() {
        let (mut g, mut store, mut bind, mut rng) = ctx();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[10, 16, 16, 1]);
        let x = g.constant(Tensor::zeros(&[4, 10]));
        let mut f = Fwd::new(&mut g, &store, &mut bind);
        let y = mlp.forward(&mut f, x);
        assert_eq!(g.value(y).shape(), &[4, 1]);
    }
}
