//! First-order optimizers over a [`ParamStore`].

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An optimizer that consumes accumulated gradients and updates parameters.
pub trait Optimizer {
    /// Applies one update step using the store's accumulated gradients,
    /// then zeroes them.
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Per-epoch learning-rate schedule applied on top of a base rate.
///
/// The TLP training loops all use exponential decay (`lr · 0.9^epoch`);
/// pretraining and fine-tuning keep the rate constant. The schedule lives
/// here so every loop shares one implementation instead of re-deriving
/// `0.9f32.powi(epoch)` in place.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// The base learning rate for every epoch.
    Constant,
    /// `base · decay^epoch`.
    Exponential {
        /// Multiplicative decay per epoch (0.9 in the TLP loops).
        decay: f32,
    },
}

impl LrSchedule {
    /// The decay used by the TLP/MTL/TenSet training loops.
    pub const fn paper_decay() -> Self {
        LrSchedule::Exponential { decay: 0.9 }
    }

    /// Learning rate for `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::Exponential { decay } => base_lr * decay.powi(epoch as i32),
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient `momentum`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<ParamId> = store.ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids
                .iter()
                .map(|&id| Tensor::zeros(store.value(id).shape()))
                .collect();
        }
        for (i, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).clone();
            let v = &mut self.velocity[i];
            for (vx, gx) in v.data_mut().iter_mut().zip(grad.data()) {
                *vx = self.momentum * *vx - self.lr * gx;
            }
            let delta = v.clone();
            store.apply_delta(id, &delta);
        }
        store.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<ParamId> = store.ids().collect();
        if self.m.len() != ids.len() {
            self.m = ids
                .iter()
                .map(|&id| Tensor::zeros(store.value(id).shape()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, &id) in ids.iter().enumerate() {
            let mut delta = Tensor::zeros(store.value(id).shape());
            {
                let grad = store.grad(id).data().to_vec();
                let value = store.value(id).data().to_vec();
                let m = self.m[i].data_mut();
                let v = self.v[i].data_mut();
                let d = delta.data_mut();
                for j in 0..grad.len() {
                    let g = grad[j] + self.weight_decay * value[j];
                    m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                    v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                    let mhat = m[j] / bc1;
                    let vhat = v[j] / bc2;
                    d[j] = -self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
            store.apply_delta(id, &delta);
        }
        store.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::graph::Graph;
    use crate::params::Binding;

    /// Minimizes (w - 3)^2 and checks convergence.
    fn converges(mut opt: impl Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        for _ in 0..400 {
            let mut g = Graph::new();
            let mut bind = Binding::new();
            let wv = bind.var(&mut g, &store, w);
            let c = g.constant(Tensor::scalar(3.0));
            let d = g.sub(wv, c);
            let sq = g.mul(d, d);
            let loss = g.sum_all(sq);
            g.backward(loss);
            bind.harvest(&g, &mut store);
            opt.step(&mut store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_to_minimum() {
        let w = converges(Sgd::new(0.05, 0.9));
        assert!((w - 3.0).abs() < 1e-3, "got {w}");
    }

    #[test]
    fn adam_converges_to_minimum() {
        let w = converges(Adam::new(0.05));
        assert!((w - 3.0).abs() < 1e-2, "got {w}");
    }

    #[test]
    fn lr_schedule_matches_legacy_decay() {
        let s = LrSchedule::paper_decay();
        for epoch in 0..8 {
            let legacy = 1e-3 * 0.9f32.powi(epoch as i32);
            assert_eq!(s.lr_at(1e-3, epoch), legacy);
        }
        assert_eq!(LrSchedule::Constant.lr_at(0.5, 7), 0.5);
    }

    #[test]
    fn adam_weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(5.0));
        let mut opt = Adam::with_config(0.1, 0.9, 0.999, 1e-8, 1.0);
        for _ in 0..300 {
            // No data gradient at all: decay alone should shrink w.
            opt.step(&mut store);
        }
        assert!(store.value(w).item().abs() < 0.5);
    }
}
