//! The tiny draft head used by draft-then-verify speculative search.
//!
//! A [`TinyHead`] is a small two-layer MLP: a *frozen* random-feature
//! hidden layer (`tanh(W₁x + b₁)`, deterministically initialized from a
//! hash — no RNG object anywhere) feeding a trained linear read-out that
//! also sees the raw features directly
//! (`score = w·x + w₂·tanh(W₁x + b₁) + b`). The hidden layer is what gives
//! the head *feature interactions*: a pure linear head cannot separate
//! candidates whose quality depends on the product of two schedule
//! properties (say, a tile size × a parallel annotation), which is where
//! the linear draft plateaued ~2% above the fully-scored search. Freezing
//! `W₁` keeps the trained part of the model linear in its parameters, so
//! the online margin-ranking update below stays convex, self-limiting and
//! cheap — random kitchen-sink features, not backprop through the hidden
//! layer.
//!
//! The head is distilled *online*: during search, every batch the full
//! model scores becomes a ranking target for one margin update, so the head
//! tracks whatever the full model currently believes — no offline training
//! pass, no labels.
//!
//! Determinism contract: the trained parameters are zero-initialized, the
//! frozen projection is a pure hash of its indices, the forward pass goes
//! through the fixed-accumulation-order [`gemm`](crate::kernels::gemm)
//! kernel, and the update path uses plain ascending-index loops, so two
//! heads fed the same `(features, targets)` stream are bitwise identical —
//! the property the search layer's RNG-neutrality discipline relies on.

use crate::kernels::gemm;

/// Batch count past which the distillation learning rate stops decaying
/// (effective floor: `base_lr / 8`). Keeps the head plastic against the
/// non-stationary full model it is distilled from.
const LR_DECAY_FLOOR_BATCHES: u64 = 15;

/// Minimum standardized-target gap (in per-batch SD units) for a pair to
/// participate in the margin-ranking update. Pairs closer than this are
/// noise-level ties the head should not burn capacity separating.
const RANK_GAP: f32 = 0.25;

/// Width of the frozen random-feature hidden layer.
const DRAFT_HIDDEN: usize = 16;

/// splitmix64 — the deterministic mixer behind the frozen projection.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic pseudo-uniform draw in `[-1, 1)` for cell `(i, tag)`.
fn hash_unit(i: u64, tag: u64) -> f32 {
    let h = mix(mix(i ^ 0xD8AF_7ED0) ^ tag);
    ((h >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0) as f32
}

/// A two-layer draft scorer:
/// `score = w · x + w₂ · tanh(W₁ x + b₁) + b` over `dim`-wide features.
///
/// `W₁`/`b₁` are frozen (hash-initialized, never updated); `w`, `w₂` and
/// `b` are the trained read-out.
#[derive(Clone, Debug, PartialEq)]
pub struct TinyHead {
    /// Frozen random-feature projection, `dim × DRAFT_HIDDEN` row-major.
    w1: Vec<f32>,
    /// Frozen hidden biases.
    b1: Vec<f32>,
    /// Trained read-out over the hidden activations.
    w2: Vec<f32>,
    /// Trained direct linear path over the raw features.
    w: Vec<f32>,
    b: f32,
    /// Batches absorbed so far (drives learning-rate decay).
    updates: u64,
}

impl TinyHead {
    /// A head over `dim`-wide features. The trained read-out (`w`, `w₂`,
    /// `b`) is zero-initialized, so a fresh head scores every candidate
    /// identically — exactly the "know nothing" prior the warm-up gate
    /// expects before the first distillation batch. The frozen projection
    /// is a pure hash of its indices scaled by `1/√dim`, so two heads of
    /// the same width are identical without consuming any RNG.
    pub fn new(dim: usize) -> Self {
        let scale = 1.0 / (dim.max(1) as f32).sqrt();
        let w1 = (0..dim * DRAFT_HIDDEN)
            .map(|i| scale * hash_unit(i as u64, 0xA1))
            .collect();
        let b1 = (0..DRAFT_HIDDEN)
            .map(|i| 0.5 * hash_unit(i as u64, 0xB2))
            .collect();
        TinyHead {
            w1,
            b1,
            w2: vec![0.0; DRAFT_HIDDEN],
            w: vec![0.0; dim],
            b: 0.0,
            updates: 0,
        }
    }

    /// Feature width the head was built for.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Trainable parameter count (`dim` direct weights + hidden read-out
    /// weights + 1 bias). The frozen projection is not counted: it never
    /// receives an update.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.w2.len() + 1
    }

    /// Distillation batches absorbed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Hidden activations `tanh(x W₁ + b₁)` for `n` feature rows, through
    /// the same blocked [`gemm`] kernel as every other matmul.
    fn hidden(&self, features: &[f32], n: usize) -> Vec<f32> {
        let mut h = vec![0.0f32; n * DRAFT_HIDDEN];
        gemm(features, &self.w1, &mut h, n, self.w.len(), DRAFT_HIDDEN);
        for row in h.chunks_exact_mut(DRAFT_HIDDEN) {
            for (v, &bias) in row.iter_mut().zip(&self.b1) {
                *v = (*v + bias).tanh();
            }
        }
        h
    }

    /// Scores `n` candidates whose features are packed row-major in
    /// `features` (`n × dim`), appending one score per candidate to `out`.
    ///
    /// Both the direct path and the hidden read-out run through the blocked
    /// [`gemm`] kernel, so drafting reuses the same fixed-accumulation
    /// contract as the full model's forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n × dim`.
    pub fn predict_into(&self, features: &[f32], n: usize, out: &mut Vec<f32>) {
        assert_eq!(
            features.len(),
            n * self.w.len(),
            "draft feature batch shape mismatch"
        );
        let base = out.len();
        out.resize(base + n, 0.0);
        gemm(features, &self.w, &mut out[base..], n, self.w.len(), 1);
        let h = self.hidden(features, n);
        let mut interact = vec![0.0f32; n];
        gemm(&h, &self.w2, &mut interact, n, DRAFT_HIDDEN, 1);
        for (s, hi) in out[base..].iter_mut().zip(&interact) {
            *s += hi + self.b;
        }
    }

    /// One online distillation step: fits the head toward the full model's
    /// *ranking* of the `n` feature rows with a pairwise margin update.
    ///
    /// Targets are standardized per batch (zero mean, unit variance) first:
    /// raw transformer scores drift in scale as the model updates online,
    /// and only their order matters downstream. Every ordered pair whose
    /// standardized gap exceeds [`RANK_GAP`] and whose predicted gap is
    /// still inside the unit margin gets a hinge step — `w += lr·(xᵢ − xⱼ)`
    /// on the direct path and `w₂ += lr·(hᵢ − hⱼ)` on the hidden read-out
    /// (averaged over violated pairs). Because the hidden layer is frozen,
    /// the trained model is linear in `(w, w₂)` and the update stays the
    /// direct convex objective for a head whose only job is to put the
    /// right candidates on top. A batch with zero target variance (all
    /// candidates scored identically) is absorbed as a no-op on the
    /// weights. The margin makes the update self-limiting, so scores stay
    /// bounded without a regression anchor.
    ///
    /// The learning rate decays as `base / sqrt(1 + updates)`, floored at
    /// `base / sqrt(LR_DECAY_FLOOR_BATCHES)`: early batches move the head
    /// quickly, but the rate never vanishes — the distillation target is the
    /// *live* full model, which keeps training during search, so a head
    /// whose rate decayed to zero would stop tracking it.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n × dim` or `targets.len() != n`.
    pub fn distill(&mut self, features: &[f32], targets: &[f32], n: usize, base_lr: f32) {
        assert_eq!(
            features.len(),
            n * self.w.len(),
            "draft feature batch shape mismatch"
        );
        assert_eq!(targets.len(), n, "draft target batch shape mismatch");
        if n == 0 {
            return;
        }
        let dim = self.w.len();
        // Standardize targets (ascending-index accumulation, deterministic).
        let mut mean = 0.0f32;
        for &t in targets {
            mean += t;
        }
        mean /= n as f32;
        let mut var = 0.0f32;
        for &t in targets {
            let d = t - mean;
            var += d * d;
        }
        var /= n as f32;
        let inv_sd = if var > 0.0 { 1.0 / var.sqrt() } else { 0.0 };
        let z: Vec<f32> = targets.iter().map(|&t| (t - mean) * inv_sd).collect();

        // Forward through the same gemm path as predict_into; keep the
        // hidden activations for the w₂ update.
        let mut pred = Vec::with_capacity(n);
        self.predict_into(features, n, &mut pred);
        let h = self.hidden(features, n);

        // Margin-violated pairs, ascending (i, j) order for determinism.
        let mut violations: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if z[i] > z[j] + RANK_GAP && pred[i] - pred[j] < 1.0 {
                    violations.push((i, j));
                }
            }
        }
        let decay = (1.0 + self.updates.min(LR_DECAY_FLOOR_BATCHES) as f32).sqrt();
        let scale = (base_lr / decay) / violations.len().max(1) as f32;
        for (i, j) in violations {
            let hi_x = &features[i * dim..(i + 1) * dim];
            let lo_x = &features[j * dim..(j + 1) * dim];
            for ((wk, &xh), &xl) in self.w.iter_mut().zip(hi_x).zip(lo_x) {
                *wk += scale * (xh - xl);
            }
            let hi_h = &h[i * DRAFT_HIDDEN..(i + 1) * DRAFT_HIDDEN];
            let lo_h = &h[j * DRAFT_HIDDEN..(j + 1) * DRAFT_HIDDEN];
            for ((wk, &ah), &al) in self.w2.iter_mut().zip(hi_h).zip(lo_h) {
                *wk += scale * (ah - al);
            }
        }
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn rows(n: usize, dim: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        (0..n * dim).map(|i| f(i / dim, i % dim)).collect()
    }

    /// Fraction of meaningfully-gapped pairs the head orders like `targets`.
    fn concordance(h: &TinyHead, feats: &[f32], targets: &[f32], n: usize) -> (u32, u32) {
        let mut pred = Vec::new();
        h.predict_into(feats, n, &mut pred);
        let (mut pairs, mut concordant) = (0u32, 0u32);
        for a in 0..n {
            for b in a + 1..n {
                if (targets[a] - targets[b]).abs() < 1e-3 {
                    continue;
                }
                pairs += 1;
                if (pred[a] - pred[b]) * (targets[a] - targets[b]) > 0.0 {
                    concordant += 1;
                }
            }
        }
        (pairs, concordant)
    }

    #[test]
    fn zero_head_scores_uniformly() {
        let h = TinyHead::new(4);
        assert_eq!(h.param_count(), 4 + DRAFT_HIDDEN + 1);
        let mut out = Vec::new();
        h.predict_into(&rows(3, 4, |i, j| (i + j) as f32), 3, &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn distillation_learns_a_linear_ranking() {
        // Target is a clean linear function of the features. The decayed-lr
        // online regime tracks *ranking* rather than exact regression, so
        // the head must get most meaningfully-gapped pairs in the right
        // order (chance is 50%) — not interpolate the targets.
        let dim = 6;
        let n = 16;
        let mut h = TinyHead::new(dim);
        // Knuth-hash the cell index for decorrelated pseudo-random features.
        let feats = rows(n, dim, |i, j| {
            ((i * dim + j) as u32).wrapping_mul(2654435761) as f32 / u32::MAX as f32
        });
        let targets: Vec<f32> = feats
            .chunks_exact(dim)
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, &x)| (j as f32 + 1.0) * x)
                    .sum()
            })
            .collect();
        for _ in 0..300 {
            h.distill(&feats, &targets, n, 0.5);
        }
        let (pairs, concordant) = concordance(&h, &feats, &targets, n);
        assert!(pairs > 50, "degenerate target spread ({pairs} pairs)");
        assert!(
            concordant * 5 >= pairs * 4,
            "head ranked only {concordant}/{pairs} pairs correctly"
        );
    }

    #[test]
    fn distillation_captures_feature_interactions() {
        // Target depends on the *product* of two features — invisible to
        // any purely linear scorer (each feature is marginally uninformative
        // by symmetry), but separable through the tanh hidden layer. The
        // MLP head must beat coin-flipping by a clear margin.
        let dim = 4;
        let n = 24;
        let feats = rows(n, dim, |i, j| {
            ((i * dim + j) as u32).wrapping_mul(2654435761) as f32 / u32::MAX as f32 * 2.0 - 1.0
        });
        let targets: Vec<f32> = feats.chunks_exact(dim).map(|r| r[0] * r[1]).collect();
        let mut h = TinyHead::new(dim);
        for _ in 0..600 {
            h.distill(&feats, &targets, n, 0.5);
        }
        let (pairs, concordant) = concordance(&h, &feats, &targets, n);
        assert!(pairs > 100, "degenerate target spread ({pairs} pairs)");
        assert!(
            concordant as f64 >= pairs as f64 * 0.65,
            "interaction ranking only {concordant}/{pairs} concordant"
        );
    }

    #[test]
    fn distillation_is_deterministic() {
        let dim = 5;
        let feats = rows(16, dim, |i, j| ((i * 3 + j) % 7) as f32);
        let targets: Vec<f32> = (0..16).map(|i| (i % 5) as f32).collect();
        let run = || {
            let mut h = TinyHead::new(dim);
            for _ in 0..10 {
                h.distill(&feats, &targets, 16, 0.1);
            }
            h
        };
        assert_eq!(run(), run());
        assert_eq!(run().updates(), 10);
    }

    #[test]
    fn constant_targets_are_a_weight_noop() {
        let dim = 3;
        let mut h = TinyHead::new(dim);
        let feats = rows(8, dim, |i, j| (i + j) as f32);
        h.distill(&feats, &[2.5; 8], 8, 0.5);
        let mut out = Vec::new();
        h.predict_into(&feats, 8, &mut out);
        assert_eq!(out, vec![0.0; 8], "zero-variance batch must not move w");
        assert_eq!(h.updates(), 1);
    }

    #[test]
    fn frozen_projection_is_identical_across_heads() {
        // Two fresh heads of the same width share the hash-derived frozen
        // layer bitwise — the RNG-free init the determinism contract needs.
        let (a, b) = (TinyHead::new(7), TinyHead::new(7));
        assert_eq!(a, b);
        assert!(a.w1.iter().any(|&w| w != 0.0), "projection must be nonzero");
        assert!(a.w1.iter().all(|w| w.abs() <= 1.0));
    }
}
