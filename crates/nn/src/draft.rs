//! The tiny draft head used by draft-then-verify speculative search.
//!
//! A [`TinyHead`] is a single linear regressor (`dim` weights + 1 bias, so
//! ~1K parameters at the paper's 25×22 feature shape) that stands in for
//! the full transformer during candidate ranking. It is distilled *online*:
//! during search, every batch the full model scores becomes a regression
//! target for a few SGD steps, so the head tracks whatever the full model
//! currently believes — no offline training pass, no labels.
//!
//! Determinism contract: the head is zero-initialized, the forward pass
//! goes through the fixed-accumulation-order [`gemm`](crate::kernels::gemm)
//! kernel, and the update path uses plain ascending-index loops, so two
//! heads fed the same `(features, targets)` stream are bitwise identical —
//! the property the search layer's RNG-neutrality discipline relies on.

use crate::kernels::gemm;

/// Batch count past which the distillation learning rate stops decaying
/// (effective floor: `base_lr / 8`). Keeps the head plastic against the
/// non-stationary full model it is distilled from.
const LR_DECAY_FLOOR_BATCHES: u64 = 15;

/// Minimum standardized-target gap (in per-batch SD units) for a pair to
/// participate in the margin-ranking update. Pairs closer than this are
/// noise-level ties the head should not burn capacity separating.
const RANK_GAP: f32 = 0.25;

/// A linear draft scorer: `score = w · x + b` over `dim`-wide features.
#[derive(Clone, Debug, PartialEq)]
pub struct TinyHead {
    w: Vec<f32>,
    b: f32,
    /// Batches absorbed so far (drives learning-rate decay).
    updates: u64,
}

impl TinyHead {
    /// A zero-initialized head over `dim`-wide features. Zero init scores
    /// every candidate identically, which is exactly the "know nothing"
    /// prior the warm-up gate expects before the first distillation batch.
    pub fn new(dim: usize) -> Self {
        TinyHead {
            w: vec![0.0; dim],
            b: 0.0,
            updates: 0,
        }
    }

    /// Feature width the head was built for.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Trainable parameter count (`dim` weights + 1 bias).
    pub fn param_count(&self) -> usize {
        self.w.len() + 1
    }

    /// Distillation batches absorbed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Scores `n` candidates whose features are packed row-major in
    /// `features` (`n × dim`), appending one score per candidate to `out`.
    ///
    /// The matrix–vector product runs through the blocked [`gemm`] kernel
    /// (`n×dim · dim×1`), so drafting reuses the same fixed-accumulation
    /// contract as the full model's forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n × dim`.
    pub fn predict_into(&self, features: &[f32], n: usize, out: &mut Vec<f32>) {
        assert_eq!(
            features.len(),
            n * self.w.len(),
            "draft feature batch shape mismatch"
        );
        let base = out.len();
        out.resize(base + n, 0.0);
        gemm(features, &self.w, &mut out[base..], n, self.w.len(), 1);
        for s in &mut out[base..] {
            *s += self.b;
        }
    }

    /// One online distillation step: fits the head toward the full model's
    /// *ranking* of the `n` feature rows with a pairwise margin update.
    ///
    /// Targets are standardized per batch (zero mean, unit variance) first:
    /// raw transformer scores drift in scale as the model updates online,
    /// and only their order matters downstream. Every ordered pair whose
    /// standardized gap exceeds [`RANK_GAP`] and whose predicted gap is
    /// still inside the unit margin gets a hinge step `w += lr·(xᵢ − xⱼ)`
    /// (averaged over violated pairs) — the direct objective for a head
    /// whose only job is to put the right candidates on top. A batch with
    /// zero target variance (all candidates scored identically) is absorbed
    /// as a no-op on the weights. The margin makes the update self-limiting,
    /// so scores stay bounded without a regression anchor.
    ///
    /// The learning rate decays as `base / sqrt(1 + updates)`, floored at
    /// `base / sqrt(LR_DECAY_FLOOR_BATCHES)`: early batches move the head
    /// quickly, but the rate never vanishes — the distillation target is the
    /// *live* full model, which keeps training during search, so a head
    /// whose rate decayed to zero would stop tracking it.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n × dim` or `targets.len() != n`.
    pub fn distill(&mut self, features: &[f32], targets: &[f32], n: usize, base_lr: f32) {
        assert_eq!(
            features.len(),
            n * self.w.len(),
            "draft feature batch shape mismatch"
        );
        assert_eq!(targets.len(), n, "draft target batch shape mismatch");
        if n == 0 {
            return;
        }
        let dim = self.w.len();
        // Standardize targets (ascending-index accumulation, deterministic).
        let mut mean = 0.0f32;
        for &t in targets {
            mean += t;
        }
        mean /= n as f32;
        let mut var = 0.0f32;
        for &t in targets {
            let d = t - mean;
            var += d * d;
        }
        var /= n as f32;
        let inv_sd = if var > 0.0 { 1.0 / var.sqrt() } else { 0.0 };
        let z: Vec<f32> = targets.iter().map(|&t| (t - mean) * inv_sd).collect();

        // Forward through the same gemm path as predict_into.
        let mut pred = Vec::with_capacity(n);
        self.predict_into(features, n, &mut pred);

        // Margin-violated pairs, ascending (i, j) order for determinism.
        let mut violations: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if z[i] > z[j] + RANK_GAP && pred[i] - pred[j] < 1.0 {
                    violations.push((i, j));
                }
            }
        }
        let decay = (1.0 + self.updates.min(LR_DECAY_FLOOR_BATCHES) as f32).sqrt();
        let scale = (base_lr / decay) / violations.len().max(1) as f32;
        for (i, j) in violations {
            let hi = &features[i * dim..(i + 1) * dim];
            let lo = &features[j * dim..(j + 1) * dim];
            for ((wk, &xh), &xl) in self.w.iter_mut().zip(hi).zip(lo) {
                *wk += scale * (xh - xl);
            }
        }
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, dim: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        (0..n * dim).map(|i| f(i / dim, i % dim)).collect()
    }

    #[test]
    fn zero_head_scores_uniformly() {
        let h = TinyHead::new(4);
        assert_eq!(h.param_count(), 5);
        let mut out = Vec::new();
        h.predict_into(&rows(3, 4, |i, j| (i + j) as f32), 3, &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn distillation_learns_a_linear_ranking() {
        // Target is a clean linear function of the features. The decayed-lr
        // online regime tracks *ranking* rather than exact regression, so
        // the head must get most meaningfully-gapped pairs in the right
        // order (chance is 50%) — not interpolate the targets.
        let dim = 6;
        let n = 16;
        let mut h = TinyHead::new(dim);
        // Knuth-hash the cell index for decorrelated pseudo-random features.
        let feats = rows(n, dim, |i, j| {
            ((i * dim + j) as u32).wrapping_mul(2654435761) as f32 / u32::MAX as f32
        });
        let targets: Vec<f32> = feats
            .chunks_exact(dim)
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, &x)| (j as f32 + 1.0) * x)
                    .sum()
            })
            .collect();
        for _ in 0..300 {
            h.distill(&feats, &targets, n, 0.5);
        }
        let mut pred = Vec::new();
        h.predict_into(&feats, n, &mut pred);
        let (mut pairs, mut concordant) = (0u32, 0u32);
        for a in 0..n {
            for b in a + 1..n {
                if (targets[a] - targets[b]).abs() < 1e-3 {
                    continue;
                }
                pairs += 1;
                if (pred[a] - pred[b]) * (targets[a] - targets[b]) > 0.0 {
                    concordant += 1;
                }
            }
        }
        assert!(pairs > 50, "degenerate target spread ({pairs} pairs)");
        assert!(
            concordant * 5 >= pairs * 4,
            "head ranked only {concordant}/{pairs} pairs correctly"
        );
    }

    #[test]
    fn distillation_is_deterministic() {
        let dim = 5;
        let feats = rows(16, dim, |i, j| ((i * 3 + j) % 7) as f32);
        let targets: Vec<f32> = (0..16).map(|i| (i % 5) as f32).collect();
        let run = || {
            let mut h = TinyHead::new(dim);
            for _ in 0..10 {
                h.distill(&feats, &targets, 16, 0.1);
            }
            h
        };
        assert_eq!(run(), run());
        assert_eq!(run().updates(), 10);
    }

    #[test]
    fn constant_targets_are_a_weight_noop() {
        let dim = 3;
        let mut h = TinyHead::new(dim);
        let feats = rows(8, dim, |i, j| (i + j) as f32);
        h.distill(&feats, &[2.5; 8], 8, 0.5);
        let mut out = Vec::new();
        h.predict_into(&feats, 8, &mut out);
        assert_eq!(out, vec![0.0; 8], "zero-variance batch must not move w");
        assert_eq!(h.updates(), 1);
    }
}
