//! `tlp-nn` — a small, pure-Rust neural-network substrate for the TLP
//! (ASPLOS 2023) reproduction.
//!
//! The crate provides exactly what the paper's cost models need, built from
//! scratch on one CPU core:
//!
//! - [`Tensor`]: dense row-major `f32` tensors with matmul kernels;
//! - [`Graph`]: tape-based reverse-mode autodiff;
//! - [`layers`]: `Linear`, multi-head self-attention, LSTM, residual blocks,
//!   layer norm, dropout, embeddings, MLP;
//! - [`optim`]: SGD and Adam over a [`ParamStore`];
//! - [`loss`]: MSE and LambdaRank (the paper's two loss options).
//!
//! # Example
//!
//! Train a one-parameter model:
//!
//! ```
//! use tlp_nn::{Adam, Binding, Graph, Optimizer, ParamStore, Tensor};
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(0.0));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..100 {
//!     let mut g = Graph::new();
//!     let mut bind = Binding::new();
//!     let wv = bind.var(&mut g, &store, w);
//!     let target = g.constant(Tensor::scalar(2.0));
//!     let d = g.sub(wv, target);
//!     let sq = g.mul(d, d);
//!     let loss = g.sum_all(sq);
//!     g.backward(loss);
//!     bind.harvest(&g, &mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).item() - 2.0).abs() < 0.05);
//! ```

#![warn(clippy::disallowed_methods)] // unwrap/expect ban in non-test lib code (see clippy.toml)
#![warn(clippy::disallowed_types)] // std HashMap/HashSet ban: deterministic iteration only
#![warn(missing_docs)]

pub mod draft;
pub mod graph;
pub mod infer;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;
pub mod tensor;
pub mod workspace;

pub use draft::TinyHead;
pub use graph::{Graph, Var};
pub use infer::{ragged_tail_sums, Ragged};
pub use kernels::Epilogue;
pub use layers::{
    Dropout, Embedding, Fwd, LayerNorm, Linear, Lstm, Mlp, MultiHeadSelfAttention, ResidualBlock,
};
pub use loss::{lambda_rank, lambda_rank_loss, mse_loss};
pub use optim::{Adam, LrSchedule, Optimizer, Sgd};
pub use params::{Binding, GradBuffer, ParamId, ParamStore};
pub use tensor::Tensor;
pub use workspace::{Arena, Workspace};
