//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the value type flowing through the autograd [`Graph`](crate::Graph)
//! (see [`crate::graph`]). Tensors are always contiguous and row-major;
//! shape-changing views (`reshape`) are free, axis permutations materialize.
//!
//! Matrix multiplies route through the register-blocked [`crate::kernels`]
//! module, which carries the fixed accumulation-order contract: every
//! output element is accumulated over the inner dimension in ascending
//! order, so scores are bit-identical regardless of blocking or batch
//! grouping. Common permutations (`[0,2,1,3]`, `[0,2,1]`, `[1,0]`) take
//! strided copy fast paths instead of the generic per-element index walk.

use crate::kernels;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use tlp_nn::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elems])", self.data.len())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

/// Number of elements implied by a shape.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel(shape)],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// Creates a rank-0-like scalar tensor (shape `[1]`).
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], &[1])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Mutable element access by multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let i = self.flat_index(index);
        &mut self.data[i]
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&idx, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                idx < dim,
                "index {idx} out of bounds for axis {i} (dim {dim})"
            );
            flat = flat * dim + idx;
        }
        flat
    }

    /// The value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not hold exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape (free).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape element count mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise binary combination with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Accumulates `other` into `self` (elementwise `+=`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Permutes the axes of the tensor, materializing the result.
    ///
    /// `perm[i]` gives the source axis that becomes axis `i` of the output.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.shape.len();
        assert_eq!(perm.len(), rank, "permutation rank mismatch");
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = vec![0.0f32; self.data.len()];
        permute_into(&self.data, &self.shape, perm, &mut out);
        Tensor {
            shape: out_shape,
            data: out,
        }
    }

    /// 2-D matrix multiply: `self [m,k] × rhs [k,n] → [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dims disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        kernels::gemm(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Batched matrix multiply on rank-3 tensors: `[b,m,k] × [b,k,n] → [b,m,n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 3, "bmm lhs must be rank 3");
        assert_eq!(rhs.shape.len(), 3, "bmm rhs must be rank 3");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
        assert_eq!(b, b2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dimension mismatch");
        let mut out = vec![0.0f32; b * m * n];
        for bi in 0..b {
            kernels::gemm(
                &self.data[bi * m * k..(bi + 1) * m * k],
                &rhs.data[bi * k * n..(bi + 1) * k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor {
            shape: vec![b, m, n],
            data: out,
        }
    }

    /// Transposed 2-D matmul `selfᵀ × rhs`: `self [k,m], rhs [k,n] → [m,n]`.
    ///
    /// Used by backward passes to avoid materializing transposes.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        for l in 0..k {
            let a_row = &self.data[l * m..(l + 1) * m];
            let b_row = &rhs.data[l * n..(l + 1) * n];
            for i in 0..m {
                let a = a_row[i];
                if a == 0.0 {
                    continue;
                }
                let o = &mut out[i * n..(i + 1) * n];
                for (oj, &bj) in o.iter_mut().zip(b_row) {
                    *oj += a * bj;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// 2-D matmul with transposed rhs `self × rhsᵀ`: `self [m,k], rhs [n,k] → [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o = &mut out[i * n..(i + 1) * n];
            for (j, oj) in o.iter_mut().enumerate() {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *oj = acc;
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }
}

/// Row-major strides for a shape.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Materializes `src` (shape `shape`) permuted by `perm` into `out`.
///
/// Dispatches to strided-copy fast paths for the permutations the
/// attention layers actually emit; anything else takes the generic
/// odometer walk. All paths produce identical bytes — permutation is a
/// pure data movement, so no accumulation-order concerns arise.
pub(crate) fn permute_into(src: &[f32], shape: &[usize], perm: &[usize], out: &mut [f32]) {
    match (shape, perm) {
        // [a,b,c,d] -> [a,c,b,d]: swap the two middle axes, moving whole
        // d-sized chunks (the attention head split/merge).
        ([a, b, c, d], [0, 2, 1, 3]) => {
            let (a, b, c, d) = (*a, *b, *c, *d);
            for ia in 0..a {
                for ib in 0..b {
                    let src_row = &src[(ia * b + ib) * c * d..(ia * b + ib + 1) * c * d];
                    for ic in 0..c {
                        let dst = ((ia * c + ic) * b + ib) * d;
                        out[dst..dst + d].copy_from_slice(&src_row[ic * d..(ic + 1) * d]);
                    }
                }
            }
        }
        // [a,b,c] -> [a,c,b]: per-slice transpose (the key transpose in
        // attention). Written column-major over the source so reads are
        // sequential.
        ([a, b, c], [0, 2, 1]) => {
            let (a, b, c) = (*a, *b, *c);
            for ia in 0..a {
                let sbase = ia * b * c;
                let obase = ia * c * b;
                for ib in 0..b {
                    for ic in 0..c {
                        out[obase + ic * b + ib] = src[sbase + ib * c + ic];
                    }
                }
            }
        }
        // [a,b] -> [b,a]: plain 2-D transpose.
        ([a, b], [1, 0]) => {
            let (a, b) = (*a, *b);
            for ia in 0..a {
                for ib in 0..b {
                    out[ib * a + ia] = src[ia * b + ib];
                }
            }
        }
        _ => {
            let out_shape: Vec<usize> = perm.iter().map(|&p| shape[p]).collect();
            let in_strides = strides(shape);
            let out_strides = strides(&out_shape);
            let mut idx = vec![0usize; shape.len()];
            for (flat_out, slot) in out.iter_mut().enumerate() {
                let mut rem = flat_out;
                for (a, &os) in out_strides.iter().enumerate() {
                    idx[a] = rem / os;
                    rem %= os;
                }
                let mut flat_in = 0;
                for (a, &p) in perm.iter().enumerate() {
                    flat_in += idx[a] * in_strides[p];
                }
                *slot = src[flat_in];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn from_vec_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let at = a.permute(&[1, 0]);
        assert_eq!(a.matmul_tn(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), &[4, 3]);
        let bt = b.permute(&[1, 0]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&bt));
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f32 * 0.1).collect(), &[2, 3, 3]);
        let c = a.bmm(&b);
        for bi in 0..2 {
            let ai = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]);
            let bi_t = Tensor::from_vec(b.data()[bi * 9..(bi + 1) * 9].to_vec(), &[3, 3]);
            let ci = ai.matmul(&bi_t);
            assert_eq!(&c.data()[bi * 6..(bi + 1) * 6], ci.data());
        }
    }

    #[test]
    fn permute_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), t.at(&[1, 2, 3]));
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn reshape_is_free_relabel() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.sq_norm(), 30.0);
    }
}
