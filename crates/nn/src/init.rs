//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(rng: &mut SmallRng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Tensor::from_vec(data, &[fan_in, fan_out])
}

/// Kaiming/He uniform initialization (for ReLU fan-in) of a `[fan_in, fan_out]` matrix.
pub fn kaiming_uniform(rng: &mut SmallRng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / fan_in as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Tensor::from_vec(data, &[fan_in, fan_out])
}

/// Uniform initialization in `[-limit, limit]` with an arbitrary shape.
pub fn uniform(rng: &mut SmallRng, shape: &[usize], limit: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = xavier_uniform(&mut rng, 10, 20);
        let limit = (6.0f32 / 30.0).sqrt();
        assert_eq!(t.shape(), &[10, 20]);
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
        // Should not be degenerate.
        assert!(t.data().iter().any(|&x| x.abs() > limit / 10.0));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(&mut SmallRng::seed_from_u64(3), 4, 4);
        let b = xavier_uniform(&mut SmallRng::seed_from_u64(3), 4, 4);
        assert_eq!(a, b);
    }
}
