//! Long-lived model parameters and their gradients.
//!
//! Parameters outlive any single autograd tape: a [`ParamStore`] owns their
//! values and accumulated gradients, layers hold [`ParamId`]s, and each
//! training step binds parameters into a fresh [`Graph`] via
//! [`Binding`].

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stable identifier of a parameter inside a [`ParamStore`].
///
/// Ids order by registration index, so `BTreeMap`/`BTreeSet` collections
/// keyed on them iterate deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Owns every learnable tensor of a model.
///
/// # Examples
///
/// ```
/// use tlp_nn::{ParamStore, Tensor};
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::zeros(&[2, 2]));
/// assert_eq!(store.value(w).shape(), &[2, 2]);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.params.push(Param {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// A parameter's current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// A parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Mutable access to a parameter's accumulated gradient.
    ///
    /// This is the hook gradient-masking policies use between the
    /// all-reduce and the optimizer step — e.g. continual adaptation
    /// freezes the shared trunk by zeroing every non-head gradient
    /// (a zero gradient leaves Adam's moments at zero, so the parameter is
    /// bitwise unchanged), or runs a low-learning-rate trunk by scaling
    /// trunk gradients down.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].grad
    }

    /// A parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len()).map(ParamId)
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad = Tensor::zeros(p.value.shape());
        }
    }

    /// Adds `g` into the accumulated gradient of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs from the parameter shape.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Global L2 norm of all gradients (used for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_assign(s);
            }
        }
    }

    /// In-place update `value += delta` for an optimizer step.
    pub fn apply_delta(&mut self, id: ParamId, delta: &Tensor) {
        self.params[id.0].value.add_assign(delta);
    }

    /// Scales every accumulated gradient by `s` (gradient averaging after a
    /// data-parallel all-reduce).
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            p.grad.scale_assign(s);
        }
    }
}

/// A thread-local gradient accumulator mirroring a [`ParamStore`]'s shapes.
///
/// Data-parallel training gives each worker its own `GradBuffer`: workers
/// harvest backward-pass gradients into their buffer with
/// [`Binding::harvest_into`], then the trainer reduces the buffers into the
/// shared store ([`GradBuffer::reduce_into`]) in a fixed order — micro-batch
/// index, not thread completion — so the summed gradient is
/// bitwise-deterministic regardless of how many threads ran or how they were
/// scheduled.
///
/// Buffers are reusable: [`GradBuffer::reset_for`] re-zeros (and on first use
/// allocates) the per-parameter tensors without reallocating on later calls.
#[derive(Clone, Debug, Default)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// Creates an empty buffer; shapes are allocated on first
    /// [`GradBuffer::reset_for`].
    pub fn new() -> Self {
        GradBuffer::default()
    }

    /// Zeroes the buffer, (re)allocating tensors to match `store`'s shapes
    /// when the store changed since the last call.
    pub fn reset_for(&mut self, store: &ParamStore) {
        let matches = self.grads.len() == store.params.len()
            && self
                .grads
                .iter()
                .zip(&store.params)
                .all(|(g, p)| g.shape() == p.value.shape());
        if matches {
            for g in &mut self.grads {
                for x in g.data_mut() {
                    *x = 0.0;
                }
            }
        } else {
            self.grads = store
                .params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
    }

    /// Adds `g` into this buffer's slot for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer was not sized for the store that issued `id`
    /// (call [`GradBuffer::reset_for`] first) or on shape mismatch.
    pub fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        self.grads[id.0].add_assign(g);
    }

    /// Adds this buffer's gradients into the store's accumulated gradients
    /// (one shard of the all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if the buffer shapes do not match the store.
    pub fn reduce_into(&self, store: &mut ParamStore) {
        assert_eq!(
            self.grads.len(),
            store.params.len(),
            "grad buffer sized for a different store"
        );
        for (g, p) in self.grads.iter().zip(&mut store.params) {
            p.grad.add_assign(g);
        }
    }
}

/// Per-tape cache binding store parameters to graph leaves.
///
/// Bind once per forward pass, then use [`Binding::var`] inside layer code;
/// after `backward`, [`Binding::harvest`] copies leaf gradients back into the
/// store.
#[derive(Debug, Default)]
pub struct Binding {
    /// Keyed by id so iteration (harvest) runs in registration order —
    /// deterministic regardless of bind order.
    bound: BTreeMap<ParamId, Var>,
}

impl Binding {
    /// Creates an empty binding for a fresh tape.
    pub fn new() -> Self {
        Binding {
            bound: BTreeMap::new(),
        }
    }

    /// Clears cached leaves so the binding can serve a fresh (or reset) tape.
    pub fn reset(&mut self) {
        self.bound.clear();
    }

    /// Returns the tape variable for `id`, creating the leaf on first use.
    pub fn var(&mut self, g: &mut Graph, store: &ParamStore, id: ParamId) -> Var {
        *self
            .bound
            .entry(id)
            .or_insert_with(|| g.leaf(store.value(id).clone(), true))
    }

    /// Copies gradients from the tape back into the store.
    pub fn harvest(&self, g: &Graph, store: &mut ParamStore) {
        for (&id, &var) in &self.bound {
            if let Some(grad) = g.grad(var) {
                store.accumulate_grad(id, grad);
            }
        }
    }

    /// Copies gradients from the tape into a thread-local [`GradBuffer`]
    /// instead of the shared store (the data-parallel path).
    ///
    /// Each parameter's gradient lands in its own slot, so iteration order
    /// here cannot affect the result (and is id-ordered anyway).
    pub fn harvest_into(&self, g: &Graph, buf: &mut GradBuffer) {
        for (&id, &var) in &self.bound {
            if let Some(grad) = g.grad(var) {
                buf.accumulate(id, grad);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn roundtrip_through_binding() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let mut g = Graph::new();
        let mut bind = Binding::new();
        let wv = bind.var(&mut g, &store, w);
        let wv2 = bind.var(&mut g, &store, w);
        assert_eq!(wv, wv2, "binding must cache the leaf");
        let s = g.sum_all(wv);
        let s2 = g.scale(s, 3.0);
        g.backward(s2);
        bind.harvest(&g, &mut store);
        assert_eq!(store.grad(w).data(), &[3.0, 3.0]);
        store.zero_grad();
        assert_eq!(store.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_buffer_matches_direct_harvest() {
        let build = || {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
            (store, w)
        };
        let run = |store: &ParamStore, w: ParamId| {
            let mut g = Graph::new();
            let mut bind = Binding::new();
            let wv = bind.var(&mut g, store, w);
            let s = g.sum_all(wv);
            let s2 = g.scale(s, 3.0);
            g.backward(s2);
            (g, bind)
        };

        // Direct path.
        let (mut direct, w) = build();
        let (g, bind) = run(&direct, w);
        bind.harvest(&g, &mut direct);

        // Buffered path, run twice to exercise buffer reuse.
        let (mut buffered, w2) = build();
        let mut buf = GradBuffer::new();
        for _ in 0..2 {
            buf.reset_for(&buffered);
            let (g, bind) = run(&buffered, w2);
            bind.harvest_into(&g, &mut buf);
        }
        buf.reduce_into(&mut buffered);

        assert_eq!(direct.grad(w).data(), buffered.grad(w2).data());
        buffered.scale_grads(0.5);
        assert_eq!(buffered.grad(w2).data(), &[1.5, 1.5]);
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2]));
        store.accumulate_grad(w, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping below the max is a no-op.
        store.clip_grad_norm(10.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }
}
