//! Reusable forward-pass buffers for repeated inference.

use crate::graph::Graph;
use crate::params::Binding;

/// A reusable (tape, binding) pair for repeated forward passes.
///
/// Allocating a fresh [`Graph`] and [`Binding`] per predict call rebuilds the
/// node tape and the parameter-leaf map from scratch every time. A
/// `Workspace` keeps both alive between calls so their backing storage is
/// reused; [`Workspace::reset`] clears contents without releasing capacity.
///
/// A `Workspace` holds no parameters itself — models stay shareable across
/// threads (`&self`) while each worker thread owns one workspace and passes
/// it by `&mut` into `predict_with`-style entry points.
///
/// ```
/// use tlp_nn::{Tensor, Workspace};
/// let mut ws = Workspace::new();
/// for _ in 0..3 {
///     ws.reset();
///     let x = ws.graph.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
///     let y = ws.graph.sum_all(x);
///     assert_eq!(ws.graph.value(y).data(), &[3.0]);
/// }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// The operation tape.
    pub graph: Graph,
    /// Parameter-leaf cache tied to the tape.
    pub bind: Binding,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Clears the tape and the binding together.
    ///
    /// A binding caches `Var` handles into its tape, so the two must never
    /// reset independently — a stale binding would hand out dangling node
    /// indices.
    pub fn reset(&mut self) {
        self.graph.reset();
        self.bind.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn reset_clears_tape_and_binding() {
        let mut ws = Workspace::new();
        let x = ws.graph.constant(Tensor::from_vec(vec![1.0], &[1]));
        assert_eq!(ws.graph.len(), 1);
        let _ = x;
        ws.reset();
        assert!(ws.graph.is_empty());
    }

    #[test]
    fn workspace_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
    }
}
