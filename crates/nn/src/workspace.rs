//! Reusable forward-pass buffers for repeated inference.

use crate::graph::Graph;
use crate::params::Binding;

/// A pool of reusable `f32` buffers for allocation-free inference.
///
/// The fused scoring path borrows scratch buffers with [`Arena::take`] and
/// returns them with [`Arena::give`]. `take` reuses the pooled buffer with
/// the smallest sufficient capacity (best fit); only when none fits does it
/// touch the allocator. Best fit matters: handing an oversized buffer to a
/// small request could starve a later large request into allocating, every
/// call, forever. With best fit a scoring loop that issues the same
/// deterministic sequence of takes every micro-batch converges after warmup
/// to a pool where every request is served from capacity — zero heap
/// allocations in steady state.
///
/// Returned buffers have the requested length but *unspecified contents*
/// (callers overwrite them); this avoids re-zeroing hot scratch memory.
#[derive(Debug, Default)]
pub struct Arena {
    free: Vec<Vec<f32>>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Borrows a buffer of length `len` with unspecified contents.
    ///
    /// Reuses the pooled buffer with the smallest sufficient capacity;
    /// allocates only when none fits (warmup, in a steady-state loop).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let slot = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match slot {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns a buffer to the pool for reuse by later [`Arena::take`]s.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A reusable (tape, binding) pair for repeated forward passes.
///
/// Allocating a fresh [`Graph`] and [`Binding`] per predict call rebuilds the
/// node tape and the parameter-leaf map from scratch every time. A
/// `Workspace` keeps both alive between calls so their backing storage is
/// reused; [`Workspace::reset`] clears contents without releasing capacity.
///
/// A `Workspace` holds no parameters itself — models stay shareable across
/// threads (`&self`) while each worker thread owns one workspace and passes
/// it by `&mut` into `predict_with`-style entry points.
///
/// ```
/// use tlp_nn::{Tensor, Workspace};
/// let mut ws = Workspace::new();
/// for _ in 0..3 {
///     ws.reset();
///     let x = ws.graph.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
///     let y = ws.graph.sum_all(x);
///     assert_eq!(ws.graph.value(y).data(), &[3.0]);
/// }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// The operation tape.
    pub graph: Graph,
    /// Parameter-leaf cache tied to the tape.
    pub bind: Binding,
    /// Scratch-buffer pool for the fused (tape-free) inference path.
    pub arena: Arena,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Clears the tape and the binding together.
    ///
    /// A binding caches `Var` handles into its tape, so the two must never
    /// reset independently — a stale binding would hand out dangling node
    /// indices. The arena is left untouched: pooled scratch buffers are the
    /// whole point of reuse across calls.
    pub fn reset(&mut self) {
        self.graph.reset();
        self.bind.reset();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn reset_clears_tape_and_binding() {
        let mut ws = Workspace::new();
        let x = ws.graph.constant(Tensor::from_vec(vec![1.0], &[1]));
        assert_eq!(ws.graph.len(), 1);
        let _ = x;
        ws.reset();
        assert!(ws.graph.is_empty());
    }

    #[test]
    fn workspace_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
    }

    #[test]
    fn arena_reuses_buffers_without_new_allocations() {
        let mut arena = Arena::new();
        // Warmup: two live buffers at once.
        let a = arena.take(100);
        let b = arena.take(10);
        let cap_a = a.capacity();
        arena.give(a);
        arena.give(b);
        assert_eq!(arena.pooled(), 2);
        // Steady state: same take sequence is served from the pool.
        let a2 = arena.take(100);
        let b2 = arena.take(10);
        assert_eq!(a2.len(), 100);
        assert_eq!(b2.len(), 10);
        assert_eq!(arena.pooled(), 0);
        assert!(a2.capacity() >= cap_a.min(100));
        arena.give(a2);
        arena.give(b2);
        // A smaller request reuses a larger buffer rather than allocating.
        let c = arena.take(5);
        assert_eq!(c.len(), 5);
        assert_eq!(arena.pooled(), 1);
    }
}
