//! Low-level `f32` compute kernels with a fixed accumulation-order contract.
//!
//! Every kernel in this module obeys one rule, which is what makes the
//! fast scoring path bit-identical to the autograd tape and to older
//! builds of this crate:
//!
//! > **Fixed accumulation order.** Each output element is a sum over the
//! > inner (`k`) dimension accumulated in ascending `k` order, one
//! > `mul` followed by one `add` per term, starting from `+0.0`. No FMA,
//! > no reassociation, no pairwise/tree reductions.
//!
//! Register blocking (the `2×24` panels in [`gemm`]) changes which output
//! elements are computed *together*, never the order of operations *within*
//! one element's accumulation chain, so results are bitwise identical
//! across block shapes — including the scalar tails used for odd sizes.
//! The autovectorizer keeps IEEE semantics (Rust never enables FP
//! contraction or reassociation), so vector width does not affect bits
//! either.
//!
//! One deliberate divergence from the historical naive kernel: the old
//! loop skipped `a == 0.0` terms. For finite `b` this is bitwise
//! neutral — the skipped term contributes `±0.0`, accumulators never
//! become `-0.0` (they start at `+0.0`, `+0.0 + ±0.0 = +0.0`, and IEEE
//! round-to-nearest exact cancellation yields `+0.0`) — so
//! `acc + ±0.0 == acc` bit-for-bit. The property tests in this module
//! pin that equivalence on inputs with explicit zeros.

/// Columns per register block. Two j-panels cover the default hidden
/// size (48) exactly; tails fall back to 8-wide then scalar columns.
const NR: usize = 24;
/// Narrow column block for tails (e.g. the `hidden = 16` test scale).
const NR2: usize = 8;

/// `out[m,n] = a[m,k] × b[k,n]`, overwriting `out`.
///
/// Cache-blocked, autovectorization-friendly: 2-row × 24-column register
/// panels with the per-element accumulation chain in ascending `k` order
/// (see the module docs for the bit-identity contract).
///
/// # Panics
///
/// Panics if the slice lengths do not match `m×k`, `k×n`, `m×n`.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm out length mismatch");
    let mut i = 0;
    while i + 2 <= m {
        gemm_rows::<2>(a, b, out, i, k, n);
        i += 2;
    }
    if i < m {
        gemm_rows::<1>(a, b, out, i, k, n);
    }
}

/// One `R`-row band of [`gemm`] starting at row `i`.
fn gemm_rows<const R: usize>(a: &[f32], b: &[f32], out: &mut [f32], i: usize, k: usize, n: usize) {
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        for l in 0..k {
            let br: &[f32; NR] = b[l * n + j..l * n + j + NR]
                .try_into()
                .unwrap_or(&[0.0; NR]); // length is NR by construction
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[(i + r) * k + l];
                for (o, &bv) in accr.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    while j + NR2 <= n {
        let mut acc = [[0.0f32; NR2]; R];
        for l in 0..k {
            let br: &[f32; NR2] = b[l * n + j..l * n + j + NR2]
                .try_into()
                .unwrap_or(&[0.0; NR2]); // length is NR2 by construction
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[(i + r) * k + l];
                for (o, &bv) in accr.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[(i + r) * n + j..(i + r) * n + j + NR2].copy_from_slice(accr);
        }
        j += NR2;
    }
    while j < n {
        for r in 0..R {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[(i + r) * k + l] * b[l * n + j];
            }
            out[(i + r) * n + j] = acc;
        }
        j += 1;
    }
}

/// Per-row epilogue applied after a GEMM accumulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Epilogue {
    /// `out = acc + bias` (bias broadcast over rows).
    Bias,
    /// `out = max(acc + bias, 0)` — the fused `Linear → ReLU` step.
    BiasRelu,
}

/// `out[m,n] = epilogue(a[m,k] × b[k,n] + bias[n])`, overwriting `out`.
///
/// Bitwise identical to `gemm` followed by a separate broadcast bias add
/// (and ReLU): the epilogue runs after each element's accumulation chain
/// completes, in the same `+ bias` / `max(x, 0)` order the unfused ops
/// use.
///
/// # Panics
///
/// Panics on slice length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(bias.len(), n, "gemm_bias bias length mismatch");
    gemm(a, b, out, m, k, n);
    match ep {
        Epilogue::Bias => {
            for row in out.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        }
        Epilogue::BiasRelu => {
            for row in out.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias) {
                    *o = (*o + bv).max(0.0);
                }
            }
        }
    }
}

/// In-place numerically-stable softmax of one row.
///
/// Shared by the tape [`Softmax`](crate::graph::Graph::softmax) op and the
/// fused inference path so both produce identical bits: subtract the row
/// max, exponentiate left to right while accumulating the sum, then
/// multiply by the reciprocal.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Fused scale-then-softmax over each `width`-sized row of `x`.
///
/// Bitwise identical to a full `x * s` elementwise pass followed by
/// [`softmax_row`] per row — the scale multiply per element happens
/// before any softmax arithmetic, exactly as the unfused op pair does.
///
/// # Panics
///
/// Panics if `x.len()` is not a multiple of `width` (with `width > 0`).
pub fn scaled_softmax_rows(x: &mut [f32], width: usize, s: f32) {
    assert!(width > 0, "scaled_softmax_rows width must be positive");
    assert_eq!(
        x.len() % width,
        0,
        "scaled_softmax_rows length not a multiple of width"
    );
    for row in x.chunks_exact_mut(width) {
        for v in row.iter_mut() {
            *v *= s;
        }
        softmax_row(row);
    }
}

/// In-place layer normalization of one row with affine parameters.
///
/// Single source of truth for the arithmetic sequence (mean, biased
/// variance, `(x - mean) * inv * gamma + beta` left to right) shared by
/// the tape `LayerNorm` op and the fused inference path, so both produce
/// identical bits.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from the row length.
pub fn layer_norm_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let d = row.len();
    assert_eq!(gamma.len(), d, "layer_norm gamma length mismatch");
    assert_eq!(beta.len(), d, "layer_norm beta length mismatch");
    let mean = row.iter().sum::<f32>() / d as f32;
    let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
    let inv = 1.0 / (var + eps).sqrt();
    for (i, x) in row.iter_mut().enumerate() {
        *x = (*x - mean) * inv * gamma[i] + beta[i];
    }
}

/// The historical naive `ikj` kernel, kept as the bit-identity reference:
/// `out[m,n] += a[m,k] × b[k,n]` over a zeroed `out`, with the `a == 0`
/// skip. Property tests assert [`gemm`] matches it bit-for-bit.
#[cfg(test)]
pub(crate) fn matmul_reference(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o = &mut out[i * n..(i + 1) * n];
        for (l, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[l * n..(l + 1) * n];
            for (oj, &bj) in o.iter_mut().zip(b_row) {
                *oj += av * bj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random finite values including exact zeros,
    /// so the reference kernel's zero-skip path is exercised.
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(7) {
                    0.0
                } else {
                    ((state % 2048) as f32 - 1024.0) * 9.77e-3
                }
            })
            .collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: bit mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_matches_reference_on_model_shapes() {
        // The shapes the cost model actually runs: up1/up2/projections,
        // the half-width head, a single-column head, and tiny bmm slices.
        for &(m, k, n) in &[
            (832, 22, 48),
            (832, 48, 48),
            (832, 48, 24),
            (832, 24, 1),
            (25, 6, 25),
            (25, 25, 6),
            (1, 48, 48),
            (13, 16, 16),
        ] {
            let a = fill(m as u64 * 31 + n as u64, m * k);
            let b = fill(k as u64 * 17 + 3, k * n);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            gemm(&a, &b, &mut fast, m, k, n);
            matmul_reference(&a, &b, &mut slow, m, k, n);
            assert_bits_eq(&fast, &slow, &format!("gemm {m}x{k}x{n}"));
        }
    }

    #[test]
    fn gemm_bias_matches_unfused() {
        let (m, k, n) = (37, 22, 48);
        let a = fill(1, m * k);
        let b = fill(2, k * n);
        let bias = fill(3, n);
        let mut unfused = vec![0.0f32; m * n];
        matmul_reference(&a, &b, &mut unfused, m, k, n);
        for row in unfused.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(&bias) {
                *o += bv;
            }
        }
        let mut fused = vec![0.0f32; m * n];
        gemm_bias(&a, &b, &bias, &mut fused, m, k, n, Epilogue::Bias);
        assert_bits_eq(&fused, &unfused, "gemm_bias");

        for v in unfused.iter_mut() {
            *v = v.max(0.0);
        }
        gemm_bias(&a, &b, &bias, &mut fused, m, k, n, Epilogue::BiasRelu);
        assert_bits_eq(&fused, &unfused, "gemm_bias_relu");
    }

    #[test]
    fn scaled_softmax_matches_unfused() {
        let width = 25;
        let mut x = fill(9, 8 * width);
        let mut unfused = x.clone();
        let s = 1.0 / 6.0f32.sqrt();
        for v in unfused.iter_mut() {
            *v *= s;
        }
        for row in unfused.chunks_exact_mut(width) {
            softmax_row(row);
        }
        scaled_softmax_rows(&mut x, width, s);
        assert_bits_eq(&x, &unfused, "scaled_softmax");
    }

    proptest! {
        /// Satellite: blocked GEMM is bitwise-equal to the naive reference
        /// over random shapes and seeds (finite values with exact zeros).
        #[test]
        fn prop_gemm_bits_match_reference(
            m in 1usize..50,
            k in 1usize..50,
            n in 1usize..60,
            seed in 0u64..u64::MAX,
        ) {
            let a = fill(seed, m * k);
            let b = fill(seed ^ 0xdead_beef, k * n);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            gemm(&a, &b, &mut fast, m, k, n);
            matmul_reference(&a, &b, &mut slow, m, k, n);
            for (x, y) in fast.iter().zip(&slow) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// Satellite: fused scale+softmax is bitwise-equal to the unfused
        /// scale pass followed by the reference row softmax.
        #[test]
        fn prop_scaled_softmax_bits_match_reference(
            rows in 1usize..12,
            width in 1usize..40,
            seed in 0u64..u64::MAX,
            s in -4.0f32..4.0,
        ) {
            let mut x = fill(seed, rows * width);
            let mut unfused = x.clone();
            for v in unfused.iter_mut() { *v *= s; }
            for row in unfused.chunks_exact_mut(width) { softmax_row(row); }
            scaled_softmax_rows(&mut x, width, s);
            for (a, b) in x.iter().zip(&unfused) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
