//! Loss functions: mean-squared error and LambdaRank.
//!
//! The TLP paper (§4.4, §6.1.1) trains with either MSE loss or a lambda rank
//! loss; attention + rank was the best combination. LambdaRank's gradient is
//! computed directly from pairwise lambdas and injected into the tape via
//! [`Graph::custom_grad_loss`].

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Mean-squared-error loss between a prediction node and constant targets.
///
/// # Panics
///
/// Panics if `targets` length differs from the prediction element count.
pub fn mse_loss(g: &mut Graph, pred: Var, targets: &[f32]) -> Var {
    let shape = g.value(pred).shape().to_vec();
    assert_eq!(
        g.value(pred).len(),
        targets.len(),
        "mse target count mismatch"
    );
    let t = g.constant(Tensor::from_vec(targets.to_vec(), &shape));
    let d = g.sub(pred, t);
    let sq = g.mul(d, d);
    g.mean_all(sq)
}

/// Raw LambdaRank computation: returns `(loss_value, d loss / d scores)`.
///
/// Uses NDCG-weighted pairwise logistic loss with gain `2^rel - 1` where the
/// relevance is the label itself (labels here are `min_latency/latency` in
/// `(0, 1]`, so higher is better).
pub fn lambda_rank(scores: &[f32], labels: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(scores.len(), labels.len(), "score/label count mismatch");
    let n = scores.len();
    let mut grad = vec![0.0f32; n];
    if n < 2 {
        return (0.0, grad);
    }
    let sigma = 1.0f32;
    let gain: Vec<f32> = labels
        .iter()
        .map(|&y| (2.0f32).powf(y * 4.0) - 1.0)
        .collect();

    // Ranks under the current model scores (0-based position after sorting
    // by score descending).
    let mut by_score: Vec<usize> = (0..n).collect();
    by_score.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank = vec![0usize; n];
    for (pos, &i) in by_score.iter().enumerate() {
        rank[i] = pos;
    }
    let discount = |pos: usize| 1.0 / ((pos as f32 + 2.0).log2());

    // Ideal DCG from sorting by label descending.
    let mut by_label: Vec<usize> = (0..n).collect();
    by_label.sort_by(|&a, &b| {
        labels[b]
            .partial_cmp(&labels[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let ideal_dcg: f32 = by_label
        .iter()
        .enumerate()
        .map(|(pos, &i)| gain[i] * discount(pos))
        .sum();
    if ideal_dcg <= 0.0 {
        return (0.0, grad);
    }

    let mut loss = 0.0f32;
    for i in 0..n {
        for j in 0..n {
            if labels[i] <= labels[j] {
                continue;
            }
            // i should be ranked above j.
            let delta_ndcg =
                ((gain[i] - gain[j]) * (discount(rank[i]) - discount(rank[j]))).abs() / ideal_dcg;
            if delta_ndcg == 0.0 {
                continue;
            }
            let diff = sigma * (scores[i] - scores[j]);
            // log(1 + e^-x), stable for both signs.
            let pair_loss = if diff > 0.0 {
                (-diff).exp().ln_1p()
            } else {
                -diff + diff.exp().ln_1p()
            };
            loss += delta_ndcg * pair_loss;
            let lambda = -sigma * delta_ndcg / (1.0 + diff.exp());
            grad[i] += lambda;
            grad[j] -= lambda;
        }
    }
    let scale = 1.0 / n as f32;
    for gx in &mut grad {
        *gx *= scale;
    }
    (loss * scale, grad)
}

/// LambdaRank loss over a prediction node, treating the batch as one query
/// group (all samples of a batch come from the same subgraph during rank
/// training).
pub fn lambda_rank_loss(g: &mut Graph, pred: Var, labels: &[f32]) -> Var {
    let shape = g.value(pred).shape().to_vec();
    let scores = g.value(pred).data().to_vec();
    let (value, grad) = lambda_rank(&scores, labels);
    g.custom_grad_loss(pred, value, Tensor::from_vec(grad, &shape))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(vec![0.5, 0.25], &[2]), true);
        let loss = mse_loss(&mut g, p, &[0.5, 0.25]);
        assert_eq!(g.value(loss).item(), 0.0);
    }

    #[test]
    fn mse_gradient_points_toward_target() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(vec![1.0], &[1]), true);
        let loss = mse_loss(&mut g, p, &[0.0]);
        g.backward(loss);
        assert!(
            g.grad(p).unwrap().item() > 0.0,
            "should push prediction down"
        );
    }

    #[test]
    fn lambda_rank_zero_for_single_item() {
        let (l, g) = lambda_rank(&[0.3], &[1.0]);
        assert_eq!(l, 0.0);
        assert_eq!(g, vec![0.0]);
    }

    #[test]
    fn lambda_rank_gradient_fixes_inversion() {
        // Item 0 has the best label but the worst score: its gradient must be
        // negative (score should increase after a gradient *descent* step).
        let (loss, grad) = lambda_rank(&[0.0, 1.0], &[1.0, 0.1]);
        assert!(loss > 0.0);
        assert!(grad[0] < 0.0, "best item pushed up");
        assert!(grad[1] > 0.0, "worst item pushed down");
    }

    #[test]
    fn lambda_rank_small_loss_when_correctly_ordered() {
        let (l_bad, _) = lambda_rank(&[0.0, 1.0], &[1.0, 0.1]);
        let (l_good, _) = lambda_rank(&[1.0, 0.0], &[1.0, 0.1]);
        assert!(l_good < l_bad);
    }

    #[test]
    fn lambda_rank_gradients_sum_to_zero() {
        let scores = [0.3, -0.2, 0.9, 0.1, 0.05];
        let labels = [0.9, 0.2, 0.4, 1.0, 0.6];
        let (_, grad) = lambda_rank(&scores, &labels);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-5, "pairwise lambdas must cancel, got {s}");
    }

    #[test]
    fn lambda_rank_descent_improves_ordering() {
        let labels = [1.0, 0.7, 0.4, 0.1];
        let mut scores = [0.0f32, 0.1, 0.2, 0.3]; // fully inverted
        for _ in 0..200 {
            let (_, grad) = lambda_rank(&scores, &labels);
            for (s, g) in scores.iter_mut().zip(&grad) {
                *s -= 0.5 * g;
            }
        }
        assert!(scores[0] > scores[1] && scores[1] > scores[2] && scores[2] > scores[3]);
    }
}
