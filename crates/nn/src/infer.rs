//! Compact (ragged) micro-batch descriptors for the fused inference path.
//!
//! TLP feature tensors are `[n, l, f]` with a fixed sequence length `l`
//! (25 in the paper), but real schedules rarely fill all `l` rows: unused
//! tail rows are exactly zero. The dense tape path pays for every padding
//! row; the fused inference path instead works on a *compact*
//! representation:
//!
//! - a compact matrix holding only the `R = Σᵢ rowsᵢ` real rows,
//!   candidate-major (candidate `i`'s rows are contiguous);
//! - a single shared *pad trace* row, the image of the all-zero padding
//!   row under each row-wise stage (padding rows are identical across
//!   candidates until attention mixes them with candidate rows).
//!
//! After attention the pad trace becomes per-candidate (pad queries attend
//! over candidate-specific keys), so post-attention stages operate on an
//! `[(R + C), dim]` matrix whose last `C` rows are the per-candidate pad
//! rows. Because padding is a contiguous *tail*, every reduction the dense
//! path performs over the `l` axis visits real rows first and then
//! `l - rowsᵢ` copies of the pad row; replaying the identical floating-point
//! operation on the (precomputed) pad value once per padding position keeps
//! results bit-identical to the dense computation while skipping all the
//! redundant arithmetic that produces those values.

/// Shape descriptor for a tail-padded micro-batch in compact form.
///
/// Borrows the per-candidate real-row counts; `seq_len` is the dense
/// sequence length `l` every candidate is padded to.
#[derive(Clone, Copy, Debug)]
pub struct Ragged<'a> {
    rows_used: &'a [usize],
    seq_len: usize,
}

impl<'a> Ragged<'a> {
    /// Creates a descriptor over per-candidate real-row counts.
    ///
    /// # Panics
    ///
    /// Panics if any count exceeds `seq_len`.
    pub fn new(rows_used: &'a [usize], seq_len: usize) -> Self {
        assert!(
            rows_used.iter().all(|&r| r <= seq_len),
            "rows_used entry exceeds seq_len"
        );
        Ragged { rows_used, seq_len }
    }

    /// Number of candidates `C` in the micro-batch.
    pub fn candidates(&self) -> usize {
        self.rows_used.len()
    }

    /// Dense sequence length `l` candidates are padded to.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Per-candidate real-row counts.
    pub fn rows_used(&self) -> &[usize] {
        self.rows_used
    }

    /// Total number of real rows `R` across the micro-batch.
    pub fn total_rows(&self) -> usize {
        self.rows_used.iter().sum()
    }
}

/// Per-candidate sums over the padded sequence axis, bit-identical to the
/// dense `reshape([n, l]) → sum_axis(1)` epilogue.
///
/// `y` holds `R + C` per-row scalars (real rows first, candidate-major,
/// then one pad-row scalar per candidate). The dense reduction starts each
/// accumulator at `+0.0` and adds the `l` row values in sequence order;
/// padding rows sit at the tail, so the compact replay adds the real values
/// first and then the pad value `seq_len - rowsᵢ` times — each addition is
/// the same f32 operation the dense path performs.
///
/// # Panics
///
/// Panics if `y` is shorter than `R + C`.
pub fn ragged_tail_sums(y: &[f32], ragged: &Ragged<'_>, out: &mut Vec<f32>) {
    let total = ragged.total_rows();
    assert!(
        y.len() >= total + ragged.candidates(),
        "ragged_tail_sums input too short"
    );
    out.clear();
    let mut base = 0usize;
    for (i, &ru) in ragged.rows_used().iter().enumerate() {
        let pad = y[total + i];
        let mut acc = 0.0f32;
        for &v in &y[base..base + ru] {
            acc += v;
        }
        for _ in ru..ragged.seq_len() {
            acc += pad;
        }
        out.push(acc);
        base += ru;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn descriptor_counts() {
        let rows = [3usize, 0, 5];
        let r = Ragged::new(&rows, 5);
        assert_eq!(r.candidates(), 3);
        assert_eq!(r.total_rows(), 8);
        assert_eq!(r.seq_len(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds seq_len")]
    fn descriptor_rejects_overflow() {
        let rows = [6usize];
        let _ = Ragged::new(&rows, 5);
    }

    #[test]
    fn tail_sums_match_dense_reduction() {
        // Candidate 0: rows [1.5, -2.25], pad 0.125, l = 4.
        // Candidate 1: no real rows, pad -0.5.
        let rows = [2usize, 0];
        let r = Ragged::new(&rows, 4);
        let y = [1.5f32, -2.25, 0.125, -0.5];
        let mut out = Vec::new();
        ragged_tail_sums(&y, &r, &mut out);

        let dense0 = [1.5f32, -2.25, 0.125, 0.125];
        let dense1 = [-0.5f32, -0.5, -0.5, -0.5];
        let sum = |row: &[f32]| row.iter().fold(0.0f32, |a, &v| a + v);
        assert_eq!(out[0].to_bits(), sum(&dense0).to_bits());
        assert_eq!(out[1].to_bits(), sum(&dense1).to_bits());
    }
}
