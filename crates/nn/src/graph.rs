//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a per-forward-pass tape of operation nodes. Model parameters
//! live outside the tape in a [`crate::params::ParamStore`]; each training
//! step binds them as leaves, runs the forward ops, calls
//! [`Graph::backward`], and harvests leaf gradients.
//!
//! ```
//! use tlp_nn::{Graph, Tensor};
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]), true);
//! let w = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2, 1]), true);
//! let y = g.matmul(x, w);
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! assert_eq!(g.grad(w).unwrap().data(), &[1.0, 2.0]);
//! ```

use crate::kernels::{self, softmax_row};
use crate::tensor::{numel, Tensor};

/// Extent of the last axis, with the operation name in the panic message.
///
/// # Panics
///
/// Panics on rank-0 tensors.
fn last_dim(shape: &[usize], what: &str) -> usize {
    match shape.last() {
        Some(&d) => d,
        None => panic!("{what} on rank-0 tensor"),
    }
}

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The operation that produced a node.
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    /// 2-D matmul `[m,k]×[k,n]`.
    Matmul(Var, Var),
    /// Batched rank-3 matmul `[b,m,k]×[b,k,n]`.
    Bmm(Var, Var),
    AddSame(Var, Var),
    Sub(Var, Var),
    MulSame(Var, Var),
    /// Adds a `[last_dim]` bias vector over the last axis.
    AddBias(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    /// Softmax over the last axis.
    Softmax(Var),
    /// Fused `softmax(x * s)` over the last axis (attention score path).
    ScaledSoftmax(Var, f32),
    /// Log-softmax over the last axis.
    LogSoftmax(Var),
    Reshape(Var),
    Permute(Var, Vec<usize>),
    /// Sums out one axis.
    SumAxis(Var, usize),
    SumAll(Var),
    MeanAll(Var),
    /// Selects index `idx` along `axis`, dropping the axis.
    Select(Var, usize, usize),
    /// Stacks equal-shaped tensors along a new axis at position `axis`.
    Stack(Vec<Var>, usize),
    /// Fused layer normalization over the last axis with affine params.
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    },
    /// Row gather from an embedding matrix.
    Embedding(Var, Vec<usize>),
    /// Mean negative log-likelihood of `targets` under row-wise log-probs.
    NllLoss(Var, Vec<usize>),
    /// Elementwise multiply by a constant mask (dropout).
    MaskMul(Var, Tensor),
    /// A scalar loss with an externally supplied gradient w.r.t. its input
    /// (used for listwise ranking losses whose gradient is computed directly).
    CustomGrad(Var, Tensor),
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
    needs_grad: bool,
}

/// Reverse-mode autodiff tape.
///
/// All ops validate their input shapes and panic on mismatch: shape errors in
/// a cost-model stack are programming errors, not recoverable conditions.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape for reuse, keeping the node storage allocated.
    ///
    /// Every `Var` handed out before the reset is invalidated; in particular
    /// any [`crate::params::Binding`] built against this tape must be reset
    /// alongside it (see [`crate::workspace::Workspace`]).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node, if backward has reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Adds an input leaf. `requires_grad` marks it for gradient accumulation.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(Op::Leaf, value, requires_grad)
    }

    /// Adds a constant leaf (no gradient).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.leaf(value, false)
    }

    /// 2-D matrix multiply.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Matmul(a, b), v, ng)
    }

    /// Batched rank-3 matrix multiply.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).bmm(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Bmm(a, b), v, ng)
    }

    /// Elementwise addition of same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::AddSame(a, b), v, ng)
    }

    /// Elementwise subtraction `a - b` of same-shaped tensors.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Sub(a, b), v, ng)
    }

    /// Elementwise product of same-shaped tensors.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MulSame(a, b), v, ng)
    }

    /// Adds a bias vector (shape `[d]`) across the last axis of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not rank 1 matching `a`'s last dim.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(bias);
        assert_eq!(bv.shape().len(), 1, "bias must be rank 1");
        let d = last_dim(av.shape(), "add_bias");
        assert_eq!(bv.shape()[0], d, "bias length must match last dim");
        let mut out = av.clone();
        for chunk in out.data_mut().chunks_mut(d) {
            for (c, &b) in chunk.iter_mut().zip(bv.data()) {
                *c += b;
            }
        }
        let ng = self.needs(a) || self.needs(bias);
        self.push(Op::AddBias(a, bias), out, ng)
    }

    /// Multiplies by a compile-time-known scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).map(|x| x * s);
        let ng = self.needs(a);
        self.push(Op::Scale(a, s), v, ng)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).map(|x| x + s);
        let ng = self.needs(a);
        self.push(Op::AddScalar(a), v, ng)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(Op::Relu(a), v, ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push(Op::Sigmoid(a), v, ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        let ng = self.needs(a);
        self.push(Op::Tanh(a), v, ng)
    }

    /// Numerically stable softmax over the last axis.
    pub fn softmax(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let d = last_dim(av.shape(), "softmax");
        let mut out = av.clone();
        for row in out.data_mut().chunks_mut(d) {
            softmax_row(row);
        }
        let ng = self.needs(a);
        self.push(Op::Softmax(a), out, ng)
    }

    /// Fused scale-then-softmax over the last axis: `softmax(a * s)`.
    ///
    /// One tape node instead of the `scale` + `softmax` pair the attention
    /// layer used to emit; the per-element arithmetic (multiply by `s`,
    /// then the same row softmax) is unchanged, so values are bitwise
    /// identical to the unfused sequence.
    pub fn scaled_softmax(&mut self, a: Var, s: f32) -> Var {
        let av = self.value(a);
        let d = last_dim(av.shape(), "scaled_softmax");
        let mut out = av.clone();
        kernels::scaled_softmax_rows(out.data_mut(), d, s);
        let ng = self.needs(a);
        self.push(Op::ScaledSoftmax(a, s), out, ng)
    }

    /// Numerically stable log-softmax over the last axis.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let d = last_dim(av.shape(), "log_softmax");
        let mut out = av.clone();
        for row in out.data_mut().chunks_mut(d) {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        let ng = self.needs(a);
        self.push(Op::LogSoftmax(a), out, ng)
    }

    /// Relabels the shape (free).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.value(a).reshape(shape);
        let ng = self.needs(a);
        self.push(Op::Reshape(a), v, ng)
    }

    /// Permutes axes (materializing).
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let v = self.value(a).permute(perm);
        let ng = self.needs(a);
        self.push(Op::Permute(a, perm.to_vec()), v, ng)
    }

    /// Sums out `axis`, reducing the rank by one.
    pub fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        let av = self.value(a);
        let shape = av.shape().to_vec();
        assert!(axis < shape.len(), "sum_axis axis out of range");
        let out_shape: Vec<usize> = shape
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != axis)
            .map(|(_, &d)| d)
            .collect();
        let out_shape = if out_shape.is_empty() {
            vec![1]
        } else {
            out_shape
        };
        let mut out = Tensor::zeros(&out_shape);
        let axis_len = shape[axis];
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        {
            let od = out.data_mut();
            let ad = av.data();
            for o in 0..outer {
                for l in 0..axis_len {
                    let src = o * axis_len * inner + l * inner;
                    let dst = o * inner;
                    for i in 0..inner {
                        od[dst + i] += ad[src + i];
                    }
                }
            }
        }
        let ng = self.needs(a);
        self.push(Op::SumAxis(a, axis), out, ng)
    }

    /// Sums every element into a scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        let ng = self.needs(a);
        self.push(Op::SumAll(a), v, ng)
    }

    /// Averages every element into a scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        let ng = self.needs(a);
        self.push(Op::MeanAll(a), v, ng)
    }

    /// Selects slice `idx` along `axis`, dropping that axis.
    pub fn select(&mut self, a: Var, axis: usize, idx: usize) -> Var {
        let av = self.value(a);
        let shape = av.shape().to_vec();
        assert!(
            axis < shape.len() && idx < shape[axis],
            "select out of range"
        );
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        let axis_len = shape[axis];
        let mut out_shape: Vec<usize> = Vec::with_capacity(shape.len() - 1);
        out_shape.extend_from_slice(&shape[..axis]);
        out_shape.extend_from_slice(&shape[axis + 1..]);
        let out_shape = if out_shape.is_empty() {
            vec![1]
        } else {
            out_shape
        };
        let mut out = Tensor::zeros(&out_shape);
        {
            let od = out.data_mut();
            let ad = av.data();
            for o in 0..outer {
                let src = o * axis_len * inner + idx * inner;
                od[o * inner..(o + 1) * inner].copy_from_slice(&ad[src..src + inner]);
            }
        }
        let ng = self.needs(a);
        self.push(Op::Select(a, axis, idx), out, ng)
    }

    /// Stacks same-shaped tensors along a new axis inserted at `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or shapes differ.
    pub fn stack(&mut self, vars: &[Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "stack of zero tensors");
        let shape = self.value(vars[0]).shape().to_vec();
        for &v in vars {
            assert_eq!(self.value(v).shape(), &shape[..], "stack shape mismatch");
        }
        assert!(axis <= shape.len(), "stack axis out of range");
        let mut out_shape = shape.clone();
        out_shape.insert(axis, vars.len());
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis..].iter().product();
        let mut out = Tensor::zeros(&out_shape);
        {
            let od = out.data_mut();
            for (si, &v) in vars.iter().enumerate() {
                let sd = self.value(v).data().to_vec();
                for o in 0..outer {
                    let dst = (o * vars.len() + si) * inner;
                    od[dst..dst + inner].copy_from_slice(&sd[o * inner..(o + 1) * inner]);
                }
            }
        }
        let ng = vars.iter().any(|&v| self.needs(v));
        self.push(Op::Stack(vars.to_vec(), axis), out, ng)
    }

    /// Layer normalization over the last axis with learnable `gamma`/`beta`.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let d = last_dim(xv.shape(), "layer_norm");
        assert_eq!(self.value(gamma).shape(), &[d], "gamma must be [last_dim]");
        assert_eq!(self.value(beta).shape(), &[d], "beta must be [last_dim]");
        let gv = self.value(gamma).data().to_vec();
        let bv = self.value(beta).data().to_vec();
        let mut out = xv.clone();
        for row in out.data_mut().chunks_mut(d) {
            kernels::layer_norm_row(row, &gv, &bv, eps);
        }
        let ng = self.needs(x) || self.needs(gamma) || self.needs(beta);
        self.push(
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
            out,
            ng,
        )
    }

    /// Gathers rows `ids` from an embedding matrix `[vocab, d]`, producing `[ids.len(), d]`.
    pub fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let wv = self.value(weight);
        assert_eq!(wv.shape().len(), 2, "embedding weight must be rank 2");
        let (vocab, d) = (wv.shape()[0], wv.shape()[1]);
        let mut out = Tensor::zeros(&[ids.len(), d]);
        {
            let od = out.data_mut();
            let wd = wv.data();
            for (r, &id) in ids.iter().enumerate() {
                assert!(id < vocab, "embedding id {id} out of vocab {vocab}");
                od[r * d..(r + 1) * d].copy_from_slice(&wd[id * d..(id + 1) * d]);
            }
        }
        let ng = self.needs(weight);
        self.push(Op::Embedding(weight, ids.to_vec()), out, ng)
    }

    /// Mean negative log-likelihood: `logp` is `[n, classes]` log-probs.
    pub fn nll_loss(&mut self, logp: Var, targets: &[usize]) -> Var {
        let lv = self.value(logp);
        assert_eq!(lv.shape().len(), 2, "nll_loss expects [n, classes]");
        let (n, c) = (lv.shape()[0], lv.shape()[1]);
        assert_eq!(n, targets.len(), "nll_loss target count mismatch");
        let mut acc = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < c, "target class {t} out of range {c}");
            acc -= lv.data()[r * c + t];
        }
        let v = Tensor::scalar(acc / n.max(1) as f32);
        let ng = self.needs(logp);
        self.push(Op::NllLoss(logp, targets.to_vec()), v, ng)
    }

    /// Multiplies elementwise by a fixed mask (used for dropout).
    pub fn mask_mul(&mut self, a: Var, mask: Tensor) -> Var {
        let v = self.value(a).zip(&mask, |x, m| x * m);
        let ng = self.needs(a);
        self.push(Op::MaskMul(a, mask), v, ng)
    }

    /// Records a scalar loss whose gradient w.r.t. `input` was computed
    /// externally (e.g. LambdaRank lambdas).
    ///
    /// # Panics
    ///
    /// Panics if `grad`'s shape differs from `input`'s.
    pub fn custom_grad_loss(&mut self, input: Var, loss_value: f32, grad: Tensor) -> Var {
        assert_eq!(
            self.value(input).shape(),
            grad.shape(),
            "custom grad shape mismatch"
        );
        let ng = self.needs(input);
        self.push(Op::CustomGrad(input, grad), Tensor::scalar(loss_value), ng)
    }

    /// Runs reverse-mode accumulation from scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward target must be scalar"
        );
        let loss_shape = self.nodes[loss.0].value.shape().to_vec();
        self.nodes[loss.0].grad = Some(Tensor::full(&loss_shape, 1.0));
        for id in (0..=loss.0).rev() {
            if self.nodes[id].grad.is_none() || !self.nodes[id].needs_grad {
                continue;
            }
            let contributions = self.local_grads(id);
            for (pid, g) in contributions {
                self.accumulate(pid, g);
            }
        }
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Computes this node's gradient contributions to its parents.
    fn local_grads(&self, id: usize) -> Vec<(Var, Tensor)> {
        let node = &self.nodes[id];
        let Some(g) = node.grad.as_ref() else {
            panic!("local_grads without grad");
        };
        let mut out: Vec<(Var, Tensor)> = Vec::new();
        match &node.op {
            Op::Leaf => {}
            Op::Matmul(a, b) => {
                // dA = dC × Bᵀ ; dB = Aᵀ × dC
                if self.needs(*a) {
                    out.push((*a, g.matmul_nt(self.value(*b))));
                }
                if self.needs(*b) {
                    out.push((*b, self.value(*a).matmul_tn(g)));
                }
            }
            Op::Bmm(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                let (bt, m, k) = (av.shape()[0], av.shape()[1], av.shape()[2]);
                let n = bv.shape()[2];
                if self.needs(*a) {
                    let mut da = Tensor::zeros(av.shape());
                    for bi in 0..bt {
                        let gs = Tensor::from_vec(
                            g.data()[bi * m * n..(bi + 1) * m * n].to_vec(),
                            &[m, n],
                        );
                        let bs = Tensor::from_vec(
                            bv.data()[bi * k * n..(bi + 1) * k * n].to_vec(),
                            &[k, n],
                        );
                        let d = gs.matmul_nt(&bs);
                        da.data_mut()[bi * m * k..(bi + 1) * m * k].copy_from_slice(d.data());
                    }
                    out.push((*a, da));
                }
                if self.needs(*b) {
                    let mut db = Tensor::zeros(bv.shape());
                    for bi in 0..bt {
                        let gs = Tensor::from_vec(
                            g.data()[bi * m * n..(bi + 1) * m * n].to_vec(),
                            &[m, n],
                        );
                        let as_ = Tensor::from_vec(
                            av.data()[bi * m * k..(bi + 1) * m * k].to_vec(),
                            &[m, k],
                        );
                        let d = as_.matmul_tn(&gs);
                        db.data_mut()[bi * k * n..(bi + 1) * k * n].copy_from_slice(d.data());
                    }
                    out.push((*b, db));
                }
            }
            Op::AddSame(a, b) => {
                if self.needs(*a) {
                    out.push((*a, g.clone()));
                }
                if self.needs(*b) {
                    out.push((*b, g.clone()));
                }
            }
            Op::Sub(a, b) => {
                if self.needs(*a) {
                    out.push((*a, g.clone()));
                }
                if self.needs(*b) {
                    out.push((*b, g.map(|x| -x)));
                }
            }
            Op::MulSame(a, b) => {
                if self.needs(*a) {
                    out.push((*a, g.zip(self.value(*b), |gx, bx| gx * bx)));
                }
                if self.needs(*b) {
                    out.push((*b, g.zip(self.value(*a), |gx, ax| gx * ax)));
                }
            }
            Op::AddBias(a, bias) => {
                if self.needs(*a) {
                    out.push((*a, g.clone()));
                }
                if self.needs(*bias) {
                    let d = self.value(*bias).shape()[0];
                    let mut gb = Tensor::zeros(&[d]);
                    for chunk in g.data().chunks(d) {
                        for (s, &x) in gb.data_mut().iter_mut().zip(chunk) {
                            *s += x;
                        }
                    }
                    out.push((*bias, gb));
                }
            }
            Op::Scale(a, s) => {
                if self.needs(*a) {
                    let s = *s;
                    out.push((*a, g.map(|x| x * s)));
                }
            }
            Op::AddScalar(a) => {
                if self.needs(*a) {
                    out.push((*a, g.clone()));
                }
            }
            Op::Relu(a) => {
                if self.needs(*a) {
                    out.push((
                        *a,
                        g.zip(&node.value, |gx, y| if y > 0.0 { gx } else { 0.0 }),
                    ));
                }
            }
            Op::Sigmoid(a) => {
                if self.needs(*a) {
                    out.push((*a, g.zip(&node.value, |gx, y| gx * y * (1.0 - y))));
                }
            }
            Op::Tanh(a) => {
                if self.needs(*a) {
                    out.push((*a, g.zip(&node.value, |gx, y| gx * (1.0 - y * y))));
                }
            }
            Op::Softmax(a) => {
                if self.needs(*a) {
                    let d = last_dim(node.value.shape(), "softmax backward");
                    let mut dx = g.clone();
                    for (gr, yr) in dx.data_mut().chunks_mut(d).zip(node.value.data().chunks(d)) {
                        let dot: f32 = gr.iter().zip(yr).map(|(&gx, &y)| gx * y).sum();
                        for (gx, &y) in gr.iter_mut().zip(yr) {
                            *gx = y * (*gx - dot);
                        }
                    }
                    out.push((*a, dx));
                }
            }
            Op::ScaledSoftmax(a, s) => {
                if self.needs(*a) {
                    // y = softmax(s·x) ⇒ dx = s · softmax-backward(y, g).
                    let d = last_dim(node.value.shape(), "softmax backward");
                    let s = *s;
                    let mut dx = g.clone();
                    for (gr, yr) in dx.data_mut().chunks_mut(d).zip(node.value.data().chunks(d)) {
                        let dot: f32 = gr.iter().zip(yr).map(|(&gx, &y)| gx * y).sum();
                        for (gx, &y) in gr.iter_mut().zip(yr) {
                            *gx = s * (y * (*gx - dot));
                        }
                    }
                    out.push((*a, dx));
                }
            }
            Op::LogSoftmax(a) => {
                if self.needs(*a) {
                    let d = last_dim(node.value.shape(), "softmax backward");
                    let mut dx = g.clone();
                    for (gr, yr) in dx.data_mut().chunks_mut(d).zip(node.value.data().chunks(d)) {
                        let gsum: f32 = gr.iter().sum();
                        for (gx, &y) in gr.iter_mut().zip(yr) {
                            *gx -= y.exp() * gsum;
                        }
                    }
                    out.push((*a, dx));
                }
            }
            Op::Reshape(a) => {
                if self.needs(*a) {
                    out.push((*a, g.reshape(self.value(*a).shape())));
                }
            }
            Op::Permute(a, perm) => {
                if self.needs(*a) {
                    let mut inv = vec![0usize; perm.len()];
                    for (i, &p) in perm.iter().enumerate() {
                        inv[p] = i;
                    }
                    out.push((*a, g.permute(&inv)));
                }
            }
            Op::SumAxis(a, axis) => {
                if self.needs(*a) {
                    let shape = self.value(*a).shape().to_vec();
                    let axis_len = shape[*axis];
                    let outer: usize = shape[..*axis].iter().product();
                    let inner: usize = shape[*axis + 1..].iter().product();
                    let mut da = Tensor::zeros(&shape);
                    let dd = da.data_mut();
                    let gd = g.data();
                    for o in 0..outer {
                        for l in 0..axis_len {
                            let dst = o * axis_len * inner + l * inner;
                            dd[dst..dst + inner].copy_from_slice(&gd[o * inner..(o + 1) * inner]);
                        }
                    }
                    out.push((*a, da));
                }
            }
            Op::SumAll(a) => {
                if self.needs(*a) {
                    let s = g.item();
                    out.push((*a, Tensor::full(self.value(*a).shape(), s)));
                }
            }
            Op::MeanAll(a) => {
                if self.needs(*a) {
                    let n = self.value(*a).len().max(1) as f32;
                    out.push((*a, Tensor::full(self.value(*a).shape(), g.item() / n)));
                }
            }
            Op::Select(a, axis, idx) => {
                if self.needs(*a) {
                    let shape = self.value(*a).shape().to_vec();
                    let axis_len = shape[*axis];
                    let outer: usize = shape[..*axis].iter().product();
                    let inner: usize = shape[*axis + 1..].iter().product();
                    let mut da = Tensor::zeros(&shape);
                    let dd = da.data_mut();
                    let gd = g.data();
                    for o in 0..outer {
                        let dst = o * axis_len * inner + idx * inner;
                        dd[dst..dst + inner].copy_from_slice(&gd[o * inner..(o + 1) * inner]);
                    }
                    out.push((*a, da));
                }
            }
            Op::Stack(vars, axis) => {
                let shape = self.value(vars[0]).shape().to_vec();
                let outer: usize = shape[..*axis].iter().product();
                let inner: usize = shape[*axis..].iter().product();
                for (si, &v) in vars.iter().enumerate() {
                    if !self.needs(v) {
                        continue;
                    }
                    let mut dv = Tensor::zeros(&shape);
                    let dd = dv.data_mut();
                    let gd = g.data();
                    for o in 0..outer {
                        let src = (o * vars.len() + si) * inner;
                        dd[o * inner..(o + 1) * inner].copy_from_slice(&gd[src..src + inner]);
                    }
                    out.push((v, dv));
                }
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            } => {
                let xv = self.value(*x);
                let d = last_dim(xv.shape(), "layer_norm backward");
                let gv = self.value(*gamma).data();
                let needs_x = self.needs(*x);
                let needs_g = self.needs(*gamma);
                let needs_b = self.needs(*beta);
                let mut dx = Tensor::zeros(xv.shape());
                let mut dgamma = Tensor::zeros(&[d]);
                let mut dbeta = Tensor::zeros(&[d]);
                for (r, (xr, gr)) in xv.data().chunks(d).zip(g.data().chunks(d)).enumerate() {
                    let mean = xr.iter().sum::<f32>() / d as f32;
                    let var = xr.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    // xhat_i = (x_i - mean) * inv
                    let xhat: Vec<f32> = xr.iter().map(|&x| (x - mean) * inv).collect();
                    if needs_g || needs_b {
                        for i in 0..d {
                            dgamma.data_mut()[i] += gr[i] * xhat[i];
                            dbeta.data_mut()[i] += gr[i];
                        }
                    }
                    if needs_x {
                        // dxhat_i = g_i * gamma_i
                        let dxhat: Vec<f32> = (0..d).map(|i| gr[i] * gv[i]).collect();
                        let sum_dxhat: f32 = dxhat.iter().sum();
                        let sum_dxhat_xhat: f32 =
                            dxhat.iter().zip(&xhat).map(|(&a, &b)| a * b).sum();
                        let row = &mut dx.data_mut()[r * d..(r + 1) * d];
                        for i in 0..d {
                            row[i] = inv / d as f32
                                * (d as f32 * dxhat[i] - sum_dxhat - xhat[i] * sum_dxhat_xhat);
                        }
                    }
                }
                if needs_x {
                    out.push((*x, dx));
                }
                if needs_g {
                    out.push((*gamma, dgamma));
                }
                if needs_b {
                    out.push((*beta, dbeta));
                }
            }
            Op::Embedding(weight, ids) => {
                if self.needs(*weight) {
                    let wv = self.value(*weight);
                    let d = wv.shape()[1];
                    let mut dw = Tensor::zeros(wv.shape());
                    let dd = dw.data_mut();
                    for (r, &id) in ids.iter().enumerate() {
                        let gr = &g.data()[r * d..(r + 1) * d];
                        for (s, &x) in dd[id * d..(id + 1) * d].iter_mut().zip(gr) {
                            *s += x;
                        }
                    }
                    out.push((*weight, dw));
                }
            }
            Op::NllLoss(logp, targets) => {
                if self.needs(*logp) {
                    let lv = self.value(*logp);
                    let (n, c) = (lv.shape()[0], lv.shape()[1]);
                    let scale = g.item() / n.max(1) as f32;
                    let mut dl = Tensor::zeros(lv.shape());
                    for (r, &t) in targets.iter().enumerate() {
                        dl.data_mut()[r * c + t] = -scale;
                    }
                    out.push((*logp, dl));
                }
            }
            Op::MaskMul(a, mask) => {
                if self.needs(*a) {
                    out.push((*a, g.zip(mask, |gx, m| gx * m)));
                }
            }
            Op::CustomGrad(a, grad) => {
                if self.needs(*a) {
                    let s = g.item();
                    out.push((*a, grad.map(|x| x * s)));
                }
            }
        }
        debug_assert!(out
            .iter()
            .all(|(p, t)| { numel(t.shape()) == self.value(*p).len() }));
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    /// Central-difference check of `d loss / d input[i]` for every element.
    fn grad_check(build: impl Fn(&mut Graph, Var) -> Var, input: Tensor, tol: f32) {
        let mut g = Graph::new();
        let x = g.leaf(input.clone(), true);
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("no grad").clone();
        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.leaf(t, false);
                let loss = build(&mut g, x);
                g.value(loss).item()
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a}, numeric {numeric}"
            );
        }
    }

    fn arange(shape: &[usize], scale: f32) -> Tensor {
        let n = numel(shape);
        Tensor::from_vec(
            (0..n)
                .map(|i| (i as f32 - n as f32 / 2.0) * scale)
                .collect(),
            shape,
        )
    }

    #[test]
    fn matmul_grad() {
        let w = arange(&[3, 2], 0.3);
        grad_check(
            move |g, x| {
                let wv = g.constant(w.clone());
                let y = g.matmul(x, wv);
                g.sum_all(y)
            },
            arange(&[2, 3], 0.1),
            1e-2,
        );
    }

    #[test]
    fn matmul_grad_rhs() {
        let a = arange(&[2, 3], 0.2);
        grad_check(
            move |g, x| {
                let av = g.constant(a.clone());
                let y = g.matmul(av, x);
                let y2 = g.tanh(y);
                g.sum_all(y2)
            },
            arange(&[3, 2], 0.1),
            1e-2,
        );
    }

    #[test]
    fn bmm_grad() {
        let b = arange(&[2, 3, 2], 0.15);
        grad_check(
            move |g, x| {
                let bv = g.constant(b.clone());
                let y = g.bmm(x, bv);
                g.sum_all(y)
            },
            arange(&[2, 2, 3], 0.1),
            1e-2,
        );
    }

    #[test]
    fn softmax_grad() {
        grad_check(
            |g, x| {
                let s = g.softmax(x);
                let s2 = g.mul(s, s);
                g.sum_all(s2)
            },
            arange(&[2, 4], 0.3),
            1e-2,
        );
    }

    #[test]
    fn scaled_softmax_grad() {
        grad_check(
            |g, x| {
                let s = g.scaled_softmax(x, 0.7);
                let s2 = g.mul(s, s);
                g.sum_all(s2)
            },
            arange(&[2, 4], 0.3),
            1e-2,
        );
    }

    #[test]
    fn scaled_softmax_matches_unfused_pair() {
        let x = arange(&[3, 5], 0.21);
        let s = 1.0 / 2.0f32.sqrt();
        let mut g = Graph::new();
        let a = g.constant(x.clone());
        let fused = g.scaled_softmax(a, s);
        let scaled = g.scale(a, s);
        let unfused = g.softmax(scaled);
        for (p, q) in g.value(fused).data().iter().zip(g.value(unfused).data()) {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "fused softmax must be bit-identical"
            );
        }
    }

    #[test]
    fn log_softmax_grad() {
        grad_check(
            |g, x| {
                let s = g.log_softmax(x);
                let t = g.tanh(s);
                g.sum_all(t)
            },
            arange(&[2, 4], 0.2),
            1e-2,
        );
    }

    #[test]
    fn layer_norm_grad() {
        let gamma = Tensor::from_vec(vec![1.0, 1.2, 0.8, 1.1], &[4]);
        let beta = Tensor::from_vec(vec![0.1, -0.1, 0.0, 0.2], &[4]);
        grad_check(
            move |g, x| {
                let ga = g.constant(gamma.clone());
                let be = g.constant(beta.clone());
                let y = g.layer_norm(x, ga, be, 1e-5);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            arange(&[3, 4], 0.37),
            2e-2,
        );
    }

    #[test]
    fn activations_grad() {
        for act in ["relu", "sigmoid", "tanh"] {
            grad_check(
                move |g, x| {
                    let y = match act {
                        "relu" => g.relu(x),
                        "sigmoid" => g.sigmoid(x),
                        _ => g.tanh(x),
                    };
                    let y2 = g.mul(y, y);
                    g.sum_all(y2)
                },
                arange(&[6], 0.31),
                1e-2,
            );
        }
    }

    #[test]
    fn sum_axis_and_select_grad() {
        grad_check(
            |g, x| {
                let s = g.sum_axis(x, 1);
                let t = g.select(s, 0, 1);
                let t2 = g.mul(t, t);
                g.sum_all(t2)
            },
            arange(&[2, 3, 2], 0.2),
            1e-2,
        );
    }

    #[test]
    fn stack_grad() {
        grad_check(
            |g, x| {
                let a = g.select(x, 0, 0);
                let b = g.select(x, 0, 1);
                let s = g.stack(&[a, b, a], 0);
                let s2 = g.mul(s, s);
                g.sum_all(s2)
            },
            arange(&[2, 3], 0.4),
            1e-2,
        );
    }

    #[test]
    fn permute_grad() {
        grad_check(
            |g, x| {
                let p = g.permute(x, &[1, 0, 2]);
                let p2 = g.mul(p, p);
                g.sum_all(p2)
            },
            arange(&[2, 3, 2], 0.1),
            1e-2,
        );
    }

    #[test]
    fn add_bias_grad() {
        let bias = Tensor::from_vec(vec![0.5, -0.5, 0.25], &[3]);
        grad_check(
            move |g, x| {
                let b = g.constant(bias.clone());
                let y = g.add_bias(x, b);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
            arange(&[2, 3], 0.2),
            1e-2,
        );
    }

    #[test]
    fn embedding_and_nll() {
        let mut g = Graph::new();
        let w = g.leaf(arange(&[5, 3], 0.1), true);
        let e = g.embedding(w, &[1, 4, 1]);
        let lp = g.log_softmax(e);
        let loss = g.nll_loss(lp, &[0, 2, 1]);
        g.backward(loss);
        let gw = g.grad(w).unwrap();
        // Rows 0, 2, 3 were never gathered: zero grad.
        for r in [0usize, 2, 3] {
            for c in 0..3 {
                assert_eq!(gw.at(&[r, c]), 0.0);
            }
        }
        // Gathered rows must have nonzero grad somewhere.
        assert!(gw.data()[3..6].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn custom_grad_loss_scales_injected_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let inj = Tensor::from_vec(vec![0.5, -1.0], &[2]);
        let l = g.custom_grad_loss(x, 3.0, inj);
        let l2 = g.scale(l, 2.0);
        g.backward(l2);
        assert_eq!(g.grad(x).unwrap().data(), &[1.0, -2.0]);
    }

    #[test]
    fn grad_accumulates_over_shared_input() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]), true);
        let y = g.add(x, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().item(), 2.0);
    }
}
