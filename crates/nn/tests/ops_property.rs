//! Property-based tests of tensor algebra and autograd correctness.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use proptest::prelude::*;
use tlp_nn::{Graph, Tensor};

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

/// Central-difference gradient check helper.
fn numeric_grad(
    build: impl Fn(&mut Graph, tlp_nn::Var) -> tlp_nn::Var,
    input: &Tensor,
    i: usize,
) -> f32 {
    let eps = 1e-2f32;
    let eval = |t: Tensor| {
        let mut g = Graph::new();
        let x = g.leaf(t, false);
        let loss = build(&mut g, x);
        g.value(loss).item()
    };
    let mut plus = input.clone();
    plus.data_mut()[i] += eps;
    let mut minus = input.clone();
    minus.data_mut()[i] -= eps;
    (eval(plus) - eval(minus)) / (2.0 * eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in finite_vec(6),
        b in finite_vec(8),
        c in finite_vec(8),
    ) {
        let a = Tensor::from_vec(a, &[3, 2]);
        let b = Tensor::from_vec(b, &[2, 4]);
        let c = Tensor::from_vec(c, &[2, 4]);
        let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// Transposed-matmul helpers agree with explicit permutes.
    #[test]
    fn matmul_variants_consistent(a in finite_vec(6), b in finite_vec(6)) {
        let a2 = Tensor::from_vec(a, &[3, 2]); // lhs [k=3, m=2] for tn
        let b2 = Tensor::from_vec(b, &[3, 2]); // rhs [k=3, n=2]
        let tn = a2.matmul_tn(&b2);
        let explicit = a2.permute(&[1, 0]).matmul(&b2);
        for (l, r) in tn.data().iter().zip(explicit.data()) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    /// Softmax rows sum to 1 and are positive for any input.
    #[test]
    fn softmax_is_distribution(x in finite_vec(12)) {
        let mut g = Graph::new();
        let v = g.constant(Tensor::from_vec(x, &[3, 4]));
        let s = g.softmax(v);
        for row in g.value(s).data().chunks(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    /// Autograd matches numeric gradients for a composite expression.
    #[test]
    fn composite_gradient_check(x in finite_vec(6), idx in 0usize..6) {
        let input = Tensor::from_vec(x, &[2, 3]);
        let build = |g: &mut Graph, x: tlp_nn::Var| {
            let t = g.tanh(x);
            let s = g.sigmoid(t);
            let m = g.mul(s, t);
            g.sum_all(m)
        };
        let mut g = Graph::new();
        let xv = g.leaf(input.clone(), true);
        let loss = build(&mut g, xv);
        g.backward(loss);
        let analytic = g.grad(xv).unwrap().data()[idx];
        let numeric = numeric_grad(build, &input, idx);
        prop_assert!(
            (analytic - numeric).abs() <= 0.02 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    /// Backward through bmm + permute keeps gradient shape equal to input.
    #[test]
    fn grad_shapes_match_inputs(x in finite_vec(24)) {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(x, &[2, 3, 4]), true);
        let p = g.permute(a, &[0, 2, 1]); // [2,4,3]
        let prod = g.bmm(p, a); // [2,4,4]
        let loss = g.sum_all(prod);
        g.backward(loss);
        prop_assert_eq!(g.grad(a).unwrap().shape(), &[2, 3, 4]);
    }

    /// Reductions agree: sum over an axis then sum-all equals sum-all.
    #[test]
    fn reduction_consistency(x in finite_vec(24)) {
        let t = Tensor::from_vec(x, &[2, 3, 4]);
        let total = t.sum();
        let mut g = Graph::new();
        let v = g.constant(t);
        let partial = g.sum_axis(v, 1);
        let back = g.sum_all(partial);
        prop_assert!((g.value(back).item() - total).abs() < 1e-3);
    }
}
