//! Behavioural tests of the optimizers on classic objectives.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use tlp_nn::{Adam, Binding, Graph, Optimizer, ParamStore, Sgd, Tensor};

/// One gradient step of the Rosenbrock-ish ill-conditioned quadratic
/// `f(x, y) = x² + 25·y²`.
fn quad_step(
    store: &mut ParamStore,
    ids: (tlp_nn::ParamId, tlp_nn::ParamId),
    opt: &mut dyn Optimizer,
) -> f32 {
    let (xid, yid) = ids;
    let mut g = Graph::new();
    let mut bind = Binding::new();
    let x = bind.var(&mut g, store, xid);
    let y = bind.var(&mut g, store, yid);
    let x2 = g.mul(x, x);
    let y2 = g.mul(y, y);
    let y2s = g.scale(y2, 25.0);
    let sum = g.add(x2, y2s);
    let loss = g.sum_all(sum);
    let val = g.value(loss).item();
    g.backward(loss);
    bind.harvest(&g, store);
    opt.step(store);
    val
}

#[test]
fn adam_handles_ill_conditioning_better_than_sgd() {
    let run = |opt: &mut dyn Optimizer| -> f32 {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::scalar(3.0));
        let y = store.add("y", Tensor::scalar(3.0));
        let mut last = f32::INFINITY;
        for _ in 0..150 {
            last = quad_step(&mut store, (x, y), opt);
        }
        last
    };
    // SGD at a rate stable for the stiff direction crawls on the flat one.
    let sgd_loss = run(&mut Sgd::new(0.015, 0.0));
    let adam_loss = run(&mut Adam::new(0.1));
    assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
    assert!(
        adam_loss < 1e-2,
        "adam should essentially solve it: {adam_loss}"
    );
}

#[test]
fn momentum_accelerates_sgd_on_flat_directions() {
    let run = |momentum: f32| -> f32 {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::scalar(3.0));
        let y = store.add("y", Tensor::scalar(0.1));
        let mut opt = Sgd::new(0.01, momentum);
        let mut last = f32::INFINITY;
        for _ in 0..120 {
            last = quad_step(&mut store, (x, y), &mut opt);
        }
        last
    };
    assert!(run(0.9) < run(0.0));
}

#[test]
fn learning_rate_override_takes_effect() {
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::scalar(1.0));
    let mut opt = Sgd::new(0.1, 0.0);
    opt.set_learning_rate(0.0);
    assert_eq!(opt.learning_rate(), 0.0);
    // Gradient present but lr 0 → no movement.
    store.accumulate_grad(w, &Tensor::scalar(5.0));
    opt.step(&mut store);
    assert_eq!(store.value(w).item(), 1.0);
    // Restore lr → movement.
    opt.set_learning_rate(0.1);
    store.accumulate_grad(w, &Tensor::scalar(5.0));
    opt.step(&mut store);
    assert!(store.value(w).item() < 1.0);
}

#[test]
fn step_zeroes_gradients() {
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::scalar(0.0));
    store.accumulate_grad(w, &Tensor::scalar(1.0));
    let mut opt = Adam::new(0.01);
    opt.step(&mut store);
    assert_eq!(store.grad(w).item(), 0.0, "step consumes gradients");
}
