//! Pass 4 — gradient coverage: a static dataflow check that every
//! trainable (unfrozen) parameter is reachable from the loss.
//!
//! Reachability follows the model's dataflow: trunk parameters feed every
//! head, so they receive gradient whenever *any* head is trained; a head's
//! parameters receive gradient only when the objective trains that head.
//! A `postprocess_grads` mask removes parameters from the trainable set.
//! The pass catches the two silent failure modes of masked training:
//! a parameter the optimizer will step but the loss never reaches
//! ([`Code::UnreachableParam`]), and a mask so broad nothing can move
//! ([`Code::NothingTrainable`]).

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::spec::{CoverageSpec, TrainedHeads};
use std::collections::BTreeSet;
use tlp_nn::{ParamId, ParamStore};

/// Runs the gradient-coverage pass.
pub fn check(store: &ParamStore, cov: &CoverageSpec, out: &mut Vec<Diagnostic>) {
    let ids: BTreeSet<ParamId> = store.ids().collect();
    let mut frozen: BTreeSet<ParamId> = BTreeSet::new();
    for &f in &cov.frozen {
        if !ids.contains(&f) {
            out.push(Diagnostic::global(
                Code::UnknownFrozenId,
                Severity::Error,
                format!(
                    "frozen id {f:?} does not exist in the store ({} params)",
                    store.len()
                ),
            ));
            continue;
        }
        frozen.insert(f);
    }

    if !ids.is_empty() && frozen.len() == ids.len() {
        out.push(Diagnostic::global(
            Code::NothingTrainable,
            Severity::Error,
            format!(
                "all {} parameters are frozen; the objective cannot train anything",
                store.len()
            ),
        ));
    }

    let any_trained = match &cov.trained {
        TrainedHeads::All => true,
        TrainedHeads::Heads(list) => !list.is_empty(),
    };

    for id in store.ids() {
        let name = store.name(id);
        let head = cov
            .head_prefixes
            .iter()
            .position(|p| name.starts_with(p.as_str()));
        let reachable = match head {
            None => any_trained,
            Some(h) => cov.trained.covers(h),
        };
        let trainable = !frozen.contains(&id);
        if trainable && !reachable {
            let mut d = Diagnostic::at(
                Code::UnreachableParam,
                Severity::Error,
                name,
                "parameter is trainable but the loss cannot reach it; it would silently never train",
            );
            if let Some(h) = head {
                d = d.on_head(h);
            }
            out.push(d);
        }
        if !trainable {
            if let Some(h) = head {
                if cov.trained.covers(h) {
                    out.push(
                        Diagnostic::at(
                            Code::FrozenTrainedParam,
                            Severity::Warn,
                            name,
                            format!("head {h} is declared trained but this parameter is frozen by the gradient mask"),
                        )
                        .on_head(h),
                    );
                }
            }
        }
    }
}
