//! `tlp-modelcheck` — a multi-pass static analyzer for model parameter
//! stores.
//!
//! The schedule language has a verifier (`tlp-verify`, V-codes); this crate
//! is its counterpart for the *model* layer. It audits a
//! [`ParamStore`](tlp_nn::ParamStore) against the architecture's
//! [`ModelSpec`] and emits typed [`Diagnostic`]s with append-only stable
//! M-codes:
//!
//! 1. **shape/arity** (`M1xx`): every expected parameter exists with the
//!    exact dims the config allocates; no missing, orphan, duplicate, or
//!    empty parameters.
//! 2. **partition integrity** (`M2xx`): trunk vs head parameter sets are
//!    disjoint and jointly exhaustive, every declared head is populated,
//!    and all heads share head 0's layout — the invariants MTL head growth
//!    and the frozen-trunk continual guarantee rely on.
//! 3. **numeric audit** (`M3xx`): NaN/Inf/denormal scan, dead-tensor
//!    (all-zero weight matrix) detection, non-finite gradient residue.
//! 4. **gradient coverage** (`M4xx`): a static dataflow check
//!    ([`check_coverage`]) that every trainable parameter is reachable
//!    from the loss, validating `postprocess_grads` masks.
//!
//! Passes 1–3 run from [`audit_store`]; pass 4 runs separately because its
//! ground truth is the *objective* (a [`CoverageSpec`]), not the
//! architecture. All passes are read-only: gating a restore, install, or
//! training run on them is RNG-neutral and bit-identical on valid models.
//! The analyzer is a single sweep over the store (memory-bound; hundreds of
//! millions of params/s — see `tlp-cli audit-model`).

#![warn(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![warn(clippy::disallowed_types)]

mod coverage;
mod diagnostic;
mod numeric;
mod partition;
mod shape;
mod spec;

pub use diagnostic::{AuditReport, AuditSummary, Code, Diagnostic, Severity};
pub use spec::{CoverageSpec, ModelSpec, ParamSpec, TrainedHeads};

use tlp_nn::ParamStore;

/// Which structural passes [`audit_store_with`] runs. All default on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditOptions {
    /// Pass 1 — shape/arity against the [`ModelSpec`].
    pub shape: bool,
    /// Pass 2 — trunk/head partition integrity.
    pub partition: bool,
    /// Pass 3 — numeric audit of values and gradient residue.
    pub numeric: bool,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            shape: true,
            partition: true,
            numeric: true,
        }
    }
}

/// Audits a store with every structural pass (1–3) enabled.
pub fn audit_store(spec: &ModelSpec, store: &ParamStore) -> AuditReport {
    audit_store_with(spec, store, &AuditOptions::default())
}

/// Audits a store with an explicit pass selection.
pub fn audit_store_with(
    spec: &ModelSpec,
    store: &ParamStore,
    options: &AuditOptions,
) -> AuditReport {
    let mut out = Vec::new();
    if options.shape {
        shape::check(spec, store, &mut out);
    }
    if options.partition {
        partition::check(spec, store, &mut out);
    }
    if options.numeric {
        numeric::check(store, &mut out);
    }
    AuditReport::new(out)
}

/// Runs pass 4 — gradient coverage of an objective over a store.
pub fn check_coverage(store: &ParamStore, cov: &CoverageSpec) -> AuditReport {
    let mut out = Vec::new();
    coverage::check(store, cov, &mut out);
    AuditReport::new(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use tlp_nn::{ParamId, ParamStore, Tensor};

    /// A two-head toy model: shared trunk + per-head linear.
    fn toy() -> (ModelSpec, ParamStore) {
        let mut store = ParamStore::new();
        store.add("backbone.up.w", Tensor::from_vec(vec![0.1; 12], &[3, 4]));
        store.add("backbone.up.b", Tensor::zeros(&[4]));
        for h in 0..2 {
            store.add(
                format!("head{h}.out.w"),
                Tensor::from_vec(vec![0.2; 4], &[4, 1]),
            );
            store.add(format!("head{h}.out.b"), Tensor::zeros(&[1]));
        }
        let spec = ModelSpec::from_store(
            &store,
            vec!["head0.".into(), "head1.".into()],
            Some("head".into()),
        );
        (spec, store)
    }

    fn prefixes(n: usize) -> Vec<String> {
        (0..n).map(|h| format!("head{h}.")).collect()
    }

    #[test]
    fn valid_store_audits_clean() {
        let (spec, store) = toy();
        let r = audit_store(&spec, &store);
        assert!(r.is_clean(), "unexpected findings:\n{r}");
    }

    #[test]
    fn missing_and_orphan_params_flagged() {
        let (spec, _) = toy();
        let mut store = ParamStore::new();
        store.add("backbone.up.w", Tensor::from_vec(vec![0.1; 12], &[3, 4]));
        store.add("backbone.up.b", Tensor::zeros(&[4]));
        store.add("head0.out.w", Tensor::from_vec(vec![0.2; 4], &[4, 1]));
        store.add("head0.out.b", Tensor::zeros(&[1]));
        store.add("head1.out.w", Tensor::from_vec(vec![0.2; 4], &[4, 1]));
        // head1.out.b missing, plus one orphan:
        store.add("bogus.w", Tensor::zeros(&[2, 2]));
        let r = audit_store(&spec, &store);
        assert!(r.has_code(Code::MissingParam));
        assert!(r.has_code(Code::OrphanParam));
        assert!(r.has_errors());
    }

    #[test]
    fn shape_mismatch_and_duplicates_flagged() {
        let (spec, _) = toy();
        let mut store = ParamStore::new();
        store.add("backbone.up.w", Tensor::from_vec(vec![0.1; 12], &[4, 3])); // transposed
        store.add("backbone.up.b", Tensor::zeros(&[4]));
        store.add("backbone.up.b", Tensor::zeros(&[4])); // duplicate
        for h in 0..2 {
            store.add(
                format!("head{h}.out.w"),
                Tensor::from_vec(vec![0.2; 4], &[4, 1]),
            );
            store.add(format!("head{h}.out.b"), Tensor::zeros(&[1]));
        }
        let r = audit_store(&spec, &store);
        assert!(r.has_code(Code::ShapeMismatch));
        assert!(r.has_code(Code::DuplicateParamName));
    }

    #[test]
    fn undeclared_head_and_empty_head_flagged() {
        let (spec, mut store) = toy();
        store.add("head5.out.w", Tensor::from_vec(vec![0.2; 4], &[4, 1]));
        let r = audit_store(&spec, &store);
        assert!(r.has_code(Code::HeadIndexOutOfRange));
        assert!(
            r.has_code(Code::OrphanParam),
            "undeclared head params are also orphans"
        );

        // A spec declaring a third head the store lacks → empty head.
        let (_, store) = toy();
        let spec3 = ModelSpec {
            head_prefixes: prefixes(3),
            ..toy().0
        };
        let r = audit_store(&spec3, &store);
        assert!(r.has_code(Code::EmptyHead));
    }

    #[test]
    fn head_layout_divergence_flagged() {
        let (spec, _) = toy();
        let mut store = ParamStore::new();
        store.add("backbone.up.w", Tensor::from_vec(vec![0.1; 12], &[3, 4]));
        store.add("backbone.up.b", Tensor::zeros(&[4]));
        store.add("head0.out.w", Tensor::from_vec(vec![0.2; 4], &[4, 1]));
        store.add("head0.out.b", Tensor::zeros(&[1]));
        // head1 carries a differently named weight → layout mismatch (and
        // M101/M102 from pass 1).
        store.add("head1.other.w", Tensor::from_vec(vec![0.2; 4], &[4, 1]));
        store.add("head1.out.b", Tensor::zeros(&[1]));
        let r = audit_store(&spec, &store);
        assert!(r.has_code(Code::HeadLayoutMismatch));
    }

    #[test]
    fn numeric_pass_flags_nan_denormal_dead() {
        let (spec, mut store) = toy();
        let ids: Vec<ParamId> = store.ids().collect();
        store.value_mut(ids[0]).data_mut()[0] = f32::NAN;
        store.value_mut(ids[2]).data_mut()[1] = 1.0e-40; // subnormal
        for x in store.value_mut(ids[4]).data_mut() {
            *x = 0.0; // dead head1.out.w
        }
        store.grad_mut(ids[1]).data_mut()[0] = f32::INFINITY;
        let r = audit_store(&spec, &store);
        assert!(r.has_code(Code::NonFiniteValue));
        assert!(r.has_code(Code::DenormalValue));
        assert!(r.has_code(Code::DeadTensor));
        assert!(r.has_code(Code::NonFiniteGradient));
        // NaN is an error; denormal/dead/grad are not.
        assert!(r.has_errors());
        let s = r.summary();
        assert_eq!(s.errors, 1);
        assert!(s.warnings >= 2);
        assert_eq!(s.lints, 1);
    }

    #[test]
    fn pass_selection_respected() {
        let (spec, mut store) = toy();
        let id = store.ids().next().unwrap();
        store.value_mut(id).data_mut()[0] = f32::NAN;
        let off = AuditOptions {
            numeric: false,
            ..AuditOptions::default()
        };
        assert!(audit_store_with(&spec, &store, &off).is_clean());
        assert!(audit_store(&spec, &store).has_errors());
    }

    #[test]
    fn coverage_clean_for_full_objective() {
        let (_, store) = toy();
        let cov = CoverageSpec::full(prefixes(2));
        assert!(check_coverage(&store, &cov).is_clean());
    }

    #[test]
    fn coverage_flags_untrained_unfrozen_head() {
        let (_, store) = toy();
        // Objective trains only head 1 but freezes nothing → head 0 params
        // would silently never train.
        let cov = CoverageSpec {
            head_prefixes: prefixes(2),
            trained: TrainedHeads::Heads(vec![1]),
            frozen: Vec::new(),
        };
        let r = check_coverage(&store, &cov);
        assert!(r.has_code(Code::UnreachableParam));
        assert!(r.has_errors());
    }

    #[test]
    fn coverage_accepts_exhaustive_frozen_mask() {
        let (_, store) = toy();
        // Frozen-trunk continual adaptation of head 1: trunk + head 0 frozen.
        let frozen: Vec<ParamId> = store
            .ids()
            .filter(|&id| !store.name(id).starts_with("head1."))
            .collect();
        let cov = CoverageSpec {
            head_prefixes: prefixes(2),
            trained: TrainedHeads::Heads(vec![1]),
            frozen,
        };
        assert!(check_coverage(&store, &cov).is_clean());
    }

    #[test]
    fn coverage_flags_total_freeze_and_frozen_trained_head() {
        let (_, store) = toy();
        let all: Vec<ParamId> = store.ids().collect();
        let cov = CoverageSpec {
            head_prefixes: prefixes(2),
            trained: TrainedHeads::All,
            frozen: all,
        };
        let r = check_coverage(&store, &cov);
        assert!(r.has_code(Code::NothingTrainable));
        assert!(r.has_code(Code::FrozenTrainedParam));
    }

    #[test]
    fn coverage_rejects_foreign_frozen_id() {
        let (_, store) = toy();
        let mut big = ParamStore::new();
        for i in 0..10 {
            big.add(format!("p{i}"), Tensor::zeros(&[1]));
        }
        let foreign = big.ids().last().unwrap(); // index 9, beyond toy's 6
        let cov = CoverageSpec {
            head_prefixes: prefixes(2),
            trained: TrainedHeads::All,
            frozen: vec![foreign],
        };
        assert!(check_coverage(&store, &cov).has_code(Code::UnknownFrozenId));
    }
}
