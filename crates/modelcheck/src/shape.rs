//! Pass 1 — shape/arity: every expected parameter exists with the exact
//! dims the architecture allocates, and nothing else is in the store.

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::spec::ModelSpec;
use std::collections::BTreeMap;
use tlp_nn::ParamStore;

/// Runs the shape/arity pass.
pub fn check(spec: &ModelSpec, store: &ParamStore, out: &mut Vec<Diagnostic>) {
    let expected: BTreeMap<&str, &[usize]> = spec
        .params
        .iter()
        .map(|p| (p.name.as_str(), p.shape.as_slice()))
        .collect();

    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for id in store.ids() {
        let name = store.name(id);
        *seen.entry(name).or_insert(0) += 1;
        let value = store.value(id);
        match expected.get(name) {
            None => out.push(Diagnostic::at(
                Code::OrphanParam,
                Severity::Error,
                name,
                format!(
                    "parameter is not part of the declared architecture (shape {:?})",
                    value.shape()
                ),
            )),
            Some(&shape) if shape != value.shape() => out.push(Diagnostic::at(
                Code::ShapeMismatch,
                Severity::Error,
                name,
                format!(
                    "architecture expects shape {:?}, store holds {:?}",
                    shape,
                    value.shape()
                ),
            )),
            Some(_) => {}
        }
        if value.is_empty() {
            out.push(Diagnostic::at(
                Code::EmptyParam,
                Severity::Error,
                name,
                "parameter tensor holds zero elements",
            ));
        }
    }

    for (name, count) in &seen {
        if *count > 1 {
            out.push(Diagnostic::at(
                Code::DuplicateParamName,
                Severity::Error,
                *name,
                format!("{count} parameters registered under one name"),
            ));
        }
    }

    for p in &spec.params {
        if !seen.contains_key(p.name.as_str()) {
            out.push(Diagnostic::at(
                Code::MissingParam,
                Severity::Error,
                p.name.as_str(),
                format!(
                    "architecture expects this parameter (shape {:?}); the store has no entry",
                    p.shape
                ),
            ));
        }
    }
}
