//! Pass 3 — numeric audit: NaN/Inf/denormal scan and dead-tensor
//! detection over values, plus a non-finite check on gradient residue.
//!
//! This is the analyzer's only pass that touches every scalar, and it is a
//! single forward sweep per tensor — the whole audit stays memory-bound
//! (hundreds of millions of params/s), far above the ≥1M params/s target.

use crate::diagnostic::{Code, Diagnostic, Severity};
use tlp_nn::ParamStore;

/// Runs the numeric-audit pass.
pub fn check(store: &ParamStore, out: &mut Vec<Diagnostic>) {
    for id in store.ids() {
        let name = store.name(id);
        let value = store.value(id);
        let mut non_finite = 0usize;
        let mut subnormal = 0usize;
        let mut all_zero = true;
        for &x in value.data() {
            if !x.is_finite() {
                non_finite += 1;
            } else if x.is_subnormal() {
                subnormal += 1;
            }
            all_zero &= x == 0.0;
        }
        if non_finite > 0 {
            out.push(Diagnostic::at(
                Code::NonFiniteValue,
                Severity::Error,
                name,
                format!("{non_finite} of {} values are NaN or infinite", value.len()),
            ));
        }
        if subnormal > 0 {
            out.push(Diagnostic::at(
                Code::DenormalValue,
                Severity::Lint,
                name,
                format!("{subnormal} of {} values are subnormal", value.len()),
            ));
        }
        // Rank-1 tensors (biases, layer-norm offsets) are legitimately
        // all-zero at init; an all-zero weight *matrix* is a dead layer.
        if all_zero && value.shape().len() >= 2 && !value.is_empty() {
            out.push(Diagnostic::at(
                Code::DeadTensor,
                Severity::Warn,
                name,
                format!(
                    "weight matrix of shape {:?} is entirely zero",
                    value.shape()
                ),
            ));
        }

        let grad_bad = store
            .grad(id)
            .data()
            .iter()
            .filter(|x| !x.is_finite())
            .count();
        if grad_bad > 0 {
            out.push(Diagnostic::at(
                Code::NonFiniteGradient,
                Severity::Warn,
                name,
                format!("{grad_bad} accumulated gradient values are NaN or infinite"),
            ));
        }
    }
}
