//! Pass 2 — partition integrity: trunk and head parameter sets are
//! disjoint and jointly exhaustive, every declared head is populated, and
//! all heads share head 0's layout (the invariant `grow_head_from` and the
//! frozen-trunk continual guarantee rely on).

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::spec::ModelSpec;
use std::collections::BTreeMap;
use tlp_nn::ParamStore;

/// Runs the partition-integrity pass.
pub fn check(spec: &ModelSpec, store: &ParamStore, out: &mut Vec<Diagnostic>) {
    // suffix → shape per head, for the layout comparison.
    let mut layouts: Vec<BTreeMap<String, Vec<usize>>> = vec![BTreeMap::new(); spec.heads()];

    for id in store.ids() {
        let name = store.name(id);
        let matching: Vec<usize> = (0..spec.heads())
            .filter(|&h| name.starts_with(spec.head_prefixes[h].as_str()))
            .collect();
        if matching.len() > 1 {
            out.push(
                Diagnostic::at(
                    Code::HeadOverlap,
                    Severity::Error,
                    name,
                    format!(
                        "parameter matches {} head prefixes; trunk/head partition is ambiguous",
                        matching.len()
                    ),
                )
                .on_head(matching[0]),
            );
        }
        if let Some(&h) = matching.first() {
            let suffix = name[spec.head_prefixes[h].len()..].to_string();
            layouts[h].insert(suffix, store.value(id).shape().to_vec());
        } else if let Some(stem) = &spec.head_stem {
            // A trunk-classified name that *claims* a head index means the
            // partition is not exhaustive: `{stem}{digits}.` beyond the
            // declared head count is an undeclared head.
            if let Some(idx) = claimed_head_index(name, stem) {
                if idx >= spec.heads() {
                    out.push(
                        Diagnostic::at(
                            Code::HeadIndexOutOfRange,
                            Severity::Error,
                            name,
                            format!(
                                "parameter claims head {idx}, but the model declares {} heads",
                                spec.heads()
                            ),
                        )
                        .on_head(idx),
                    );
                }
            }
        }
    }

    for (h, layout) in layouts.iter().enumerate() {
        if layout.is_empty() {
            out.push(
                Diagnostic::global(
                    Code::EmptyHead,
                    Severity::Error,
                    format!(
                        "declared head {h} (prefix `{}`) owns no parameters",
                        spec.head_prefixes[h]
                    ),
                )
                .on_head(h),
            );
        }
    }

    if let Some((first, rest)) = layouts.split_first() {
        for (i, layout) in rest.iter().enumerate() {
            let h = i + 1;
            if layout.is_empty() || first.is_empty() || layout == first {
                continue;
            }
            let detail = layout_diff(first, layout);
            out.push(
                Diagnostic::global(
                    Code::HeadLayoutMismatch,
                    Severity::Error,
                    format!("head {h} layout differs from head 0: {detail}"),
                )
                .on_head(h),
            );
        }
    }
}

/// Parses `{stem}{digits}.` at the start of `name`.
fn claimed_head_index(name: &str, stem: &str) -> Option<usize> {
    let rest = name.strip_prefix(stem)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() || !rest[digits.len()..].starts_with('.') {
        return None;
    }
    digits.parse().ok()
}

/// Human-readable first difference between two head layouts.
fn layout_diff(a: &BTreeMap<String, Vec<usize>>, b: &BTreeMap<String, Vec<usize>>) -> String {
    for (suffix, shape) in a {
        match b.get(suffix) {
            None => return format!("missing `{suffix}`"),
            Some(other) if other != shape => {
                return format!("`{suffix}` is {other:?}, head 0 has {shape:?}")
            }
            Some(_) => {}
        }
    }
    for suffix in b.keys() {
        if !a.contains_key(suffix) {
            return format!("extra `{suffix}`");
        }
    }
    "layouts differ".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claimed_head_index_parses_stem_digit_dot() {
        assert_eq!(claimed_head_index("head7.out1.w", "head"), Some(7));
        assert_eq!(claimed_head_index("head10.out1.w", "head"), Some(10));
        assert_eq!(claimed_head_index("header.w", "head"), None);
        assert_eq!(claimed_head_index("head.out1.w", "head"), None);
        assert_eq!(claimed_head_index("backbone.up1.w", "head"), None);
    }
}
