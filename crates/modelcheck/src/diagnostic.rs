//! Typed model diagnostics: stable M-codes, severities, and the audit
//! report.
//!
//! The design mirrors the schedule verifier's V-codes
//! (`tlp-verify::diagnostic`): a closed `Code` enum with append-only stable
//! string forms, an ordered `Severity`, and a sorted report with per-severity
//! counts. The locus differs — model findings anchor on a *parameter name*
//! (and optionally a head index) instead of a schedule step.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a model finding is.
///
/// Only [`Severity::Error`] means "this model is structurally invalid"; the
/// persist/serve/continual gates reject on errors alone. Warnings mark
/// states a model can legally be in but that usually indicate a training or
/// corruption problem; lints are observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Observation; the model is fine.
    Lint,
    /// Suspicious but loadable; likely a training or data problem.
    Warn,
    /// Structurally invalid; the model is rejected by the gates.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Lint => "lint",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Stable model-audit codes.
///
/// The numeric band encodes the pass that produces the code: `M1xx`
/// shape/arity, `M2xx` partition integrity, `M3xx` numeric audit, `M4xx`
/// gradient coverage. Codes are append-only: a code's meaning never changes
/// once released, so logs and dashboards can key on the string form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Code {
    /// A parameter the architecture requires is absent from the store.
    MissingParam,
    /// A store parameter the architecture does not declare.
    OrphanParam,
    /// A parameter's shape disagrees with the architecture.
    ShapeMismatch,
    /// Two store parameters share one name.
    DuplicateParamName,
    /// A parameter tensor with zero elements.
    EmptyParam,
    /// The snapshot's stored checksum disagrees with the store contents.
    ChecksumMismatch,
    /// A parameter name matches more than one head prefix.
    HeadOverlap,
    /// A parameter claims a head index at or beyond the declared head count.
    HeadIndexOutOfRange,
    /// A declared head owns no parameters.
    EmptyHead,
    /// A head's suffix→shape layout differs from head 0's.
    HeadLayoutMismatch,
    /// A parameter value is NaN or infinite.
    NonFiniteValue,
    /// A parameter contains subnormal (denormal) values.
    DenormalValue,
    /// A weight matrix (rank ≥ 2) that is entirely zero.
    DeadTensor,
    /// A parameter's accumulated gradient is NaN or infinite.
    NonFiniteGradient,
    /// A trainable (unfrozen) parameter the loss cannot reach.
    UnreachableParam,
    /// A frozen parameter inside a head declared trained.
    FrozenTrainedParam,
    /// Every parameter is frozen; the objective cannot move anything.
    NothingTrainable,
    /// A frozen id that does not exist in the store.
    UnknownFrozenId,
}

impl Code {
    /// The stable string form, e.g. `"M301"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::MissingParam => "M101",
            Code::OrphanParam => "M102",
            Code::ShapeMismatch => "M103",
            Code::DuplicateParamName => "M104",
            Code::EmptyParam => "M105",
            Code::ChecksumMismatch => "M106",
            Code::HeadOverlap => "M201",
            Code::HeadIndexOutOfRange => "M202",
            Code::EmptyHead => "M203",
            Code::HeadLayoutMismatch => "M204",
            Code::NonFiniteValue => "M301",
            Code::DenormalValue => "M302",
            Code::DeadTensor => "M303",
            Code::NonFiniteGradient => "M304",
            Code::UnreachableParam => "M401",
            Code::FrozenTrainedParam => "M402",
            Code::NothingTrainable => "M403",
            Code::UnknownFrozenId => "M404",
        }
    }

    /// All codes, for documentation tables and exhaustive tests.
    pub const ALL: [Code; 18] = [
        Code::MissingParam,
        Code::OrphanParam,
        Code::ShapeMismatch,
        Code::DuplicateParamName,
        Code::EmptyParam,
        Code::ChecksumMismatch,
        Code::HeadOverlap,
        Code::HeadIndexOutOfRange,
        Code::EmptyHead,
        Code::HeadLayoutMismatch,
        Code::NonFiniteValue,
        Code::DenormalValue,
        Code::DeadTensor,
        Code::NonFiniteGradient,
        Code::UnreachableParam,
        Code::FrozenTrainedParam,
        Code::NothingTrainable,
        Code::UnknownFrozenId,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity class.
    pub severity: Severity,
    /// Name of the offending parameter (`None` for whole-model findings
    /// such as an empty head or a checksum mismatch).
    pub param: Option<String>,
    /// Head index the finding concerns, when it is head-scoped.
    pub head: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic anchored at a parameter.
    pub fn at(
        code: Code,
        severity: Severity,
        param: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            param: Some(param.into()),
            head: None,
            message: message.into(),
        }
    }

    /// Creates a whole-model diagnostic.
    pub fn global(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            param: None,
            head: None,
            message: message.into(),
        }
    }

    /// Tags the diagnostic with a head index.
    pub fn on_head(mut self, head: usize) -> Self {
        self.head = Some(head);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            Some(p) => write!(
                f,
                "{}[{}] `{}`: {}",
                self.code, self.severity, p, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.code, self.severity, self.message),
        }
    }
}

/// Per-model diagnostic counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Number of error diagnostics.
    pub errors: u32,
    /// Number of warning diagnostics.
    pub warnings: u32,
    /// Number of lint diagnostics.
    pub lints: u32,
}

impl AuditSummary {
    /// Whether the model passed the gates (no errors).
    pub fn is_valid(&self) -> bool {
        self.errors == 0
    }
}

/// The outcome of auditing one model: every diagnostic from every pass, in
/// parameter order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// All findings, sorted by parameter name (whole-model findings last)
    /// then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Builds a report, normalizing diagnostic order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            let ka = (a.param.is_none(), &a.param, a.code);
            let kb = (b.param.is_none(), &b.param, b.code);
            ka.cmp(&kb)
        });
        AuditReport { diagnostics }
    }

    /// Merges another report's findings into this one, re-sorting.
    pub fn merge(self, other: AuditReport) -> AuditReport {
        let mut all = self.diagnostics;
        all.extend(other.diagnostics);
        AuditReport::new(all)
    }

    /// Whether the model passed the gates: zero error-severity findings.
    /// Warnings and lints do not fail a model.
    pub fn passes(&self) -> bool {
        !self.has_errors()
    }

    /// Whether any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether the report is entirely empty (no findings of any severity).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Counts per M-code, in code order. The `&'static str` keys are the
    /// stable code names (`"M101"`, …), ready for JSON summaries.
    pub fn code_counts(&self) -> std::collections::BTreeMap<&'static str, u32> {
        let mut counts = std::collections::BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.code.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Counts per severity.
    pub fn summary(&self) -> AuditSummary {
        let mut s = AuditSummary::default();
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => s.errors += 1,
                Severity::Warn => s.warnings += 1,
                Severity::Lint => s.lints += 1,
            }
        }
        s
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods, clippy::disallowed_types)]
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {}", c.as_str());
        }
        assert_eq!(Code::MissingParam.as_str(), "M101");
        assert_eq!(Code::NonFiniteValue.as_str(), "M301");
        assert_eq!(Code::UnreachableParam.as_str(), "M401");
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Lint);
    }

    #[test]
    fn report_sorts_and_summarizes() {
        let r = AuditReport::new(vec![
            Diagnostic::global(Code::EmptyHead, Severity::Error, "head 1 empty").on_head(1),
            Diagnostic::at(Code::NonFiniteValue, Severity::Error, "head0.out1.w", "NaN"),
            Diagnostic::at(
                Code::DeadTensor,
                Severity::Warn,
                "backbone.up1.w",
                "all zero",
            ),
        ]);
        assert_eq!(r.diagnostics[0].param.as_deref(), Some("backbone.up1.w"));
        assert_eq!(r.diagnostics[2].param, None);
        assert_eq!(r.diagnostics[2].head, Some(1));
        let s = r.summary();
        assert_eq!((s.errors, s.warnings, s.lints), (2, 1, 0));
        assert!(!r.passes());
        assert!(!s.is_valid());
        assert!(r.has_code(Code::EmptyHead));
        assert!(!r.has_code(Code::ChecksumMismatch));
    }

    #[test]
    fn diagnostics_serialize() {
        let d = Diagnostic::at(
            Code::ShapeMismatch,
            Severity::Error,
            "head.out2.w",
            "[4] vs [4, 1]",
        );
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("ShapeMismatch"));
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
