//! What a model's [`ParamStore`] is *supposed* to contain.
//!
//! A [`ModelSpec`] is the analyzer's ground truth: one [`ParamSpec`] per
//! expected parameter (name + shape) plus the head partition (one name
//! prefix per platform head). Embedders build it from a freshly constructed
//! model of the same architecture config — the constructor *is* the spec,
//! so the analyzer never drifts from the real registration order — via
//! [`ModelSpec::from_store`].
//!
//! A [`CoverageSpec`] is the analogous ground truth for the gradient-
//! coverage pass: which heads the objective trains and which parameter ids
//! a `postprocess_grads` mask freezes.

use serde::{Deserialize, Serialize};
use tlp_nn::{ParamId, ParamStore};

/// One expected parameter: registered name and exact shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// The name the architecture registers the parameter under.
    pub name: String,
    /// The exact dims the architecture allocates.
    pub shape: Vec<usize>,
}

/// The architecture's expectation for a whole model store.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Every expected parameter, in registration order.
    pub params: Vec<ParamSpec>,
    /// One name prefix per head, in head order (e.g. `"head0."`). Every
    /// parameter not matching a head prefix belongs to the shared trunk.
    pub head_prefixes: Vec<String>,
    /// When set, parameter names of the form `{stem}{digits}.` claim a head
    /// index; indices at or beyond `head_prefixes.len()` are flagged
    /// ([`Code::HeadIndexOutOfRange`](crate::Code::HeadIndexOutOfRange)).
    pub head_stem: Option<String>,
}

impl ModelSpec {
    /// Builds the spec from a reference store — typically one freshly
    /// constructed from the architecture config, whose registrations are by
    /// definition correct.
    pub fn from_store(
        store: &ParamStore,
        head_prefixes: Vec<String>,
        head_stem: Option<String>,
    ) -> Self {
        let params = store
            .ids()
            .map(|id| ParamSpec {
                name: store.name(id).to_string(),
                shape: store.value(id).shape().to_vec(),
            })
            .collect();
        ModelSpec {
            params,
            head_prefixes,
            head_stem,
        }
    }

    /// Number of declared heads.
    pub fn heads(&self) -> usize {
        self.head_prefixes.len()
    }

    /// Total number of scalar weights the spec expects.
    pub fn num_weights(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.shape.iter().product::<usize>())
            .sum()
    }

    /// The head index a parameter name belongs to, if any.
    pub fn head_of(&self, name: &str) -> Option<usize> {
        self.head_prefixes
            .iter()
            .position(|p| name.starts_with(p.as_str()))
    }
}

/// Which heads an objective trains.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainedHeads {
    /// Every head receives gradient (the offline MTL objective).
    All,
    /// Only the listed head indices receive gradient (continual adaptation
    /// of one platform head).
    Heads(Vec<usize>),
}

impl TrainedHeads {
    /// Whether head `idx` is trained.
    pub fn covers(&self, idx: usize) -> bool {
        match self {
            TrainedHeads::All => true,
            TrainedHeads::Heads(list) => list.contains(&idx),
        }
    }
}

/// Ground truth for the gradient-coverage pass: what an objective reaches
/// and what its gradient mask freezes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSpec {
    /// One name prefix per head, in head order.
    pub head_prefixes: Vec<String>,
    /// Heads the objective back-propagates into. Trunk parameters feed
    /// every head, so they are reachable whenever any head is trained.
    pub trained: TrainedHeads,
    /// Parameter ids a `postprocess_grads` mask zeroes (frozen-trunk /
    /// frozen-old-heads continual adaptation).
    pub frozen: Vec<ParamId>,
}

impl CoverageSpec {
    /// A spec for an objective that trains everything and freezes nothing.
    pub fn full(head_prefixes: Vec<String>) -> Self {
        CoverageSpec {
            head_prefixes,
            trained: TrainedHeads::All,
            frozen: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_nn::Tensor;

    #[test]
    fn spec_from_store_captures_names_and_shapes() {
        let mut store = ParamStore::new();
        store.add("backbone.up1.w", Tensor::zeros(&[3, 4]));
        store.add("head0.out1.w", Tensor::zeros(&[4, 2]));
        let spec = ModelSpec::from_store(&store, vec!["head0.".into()], Some("head".into()));
        assert_eq!(spec.params.len(), 2);
        assert_eq!(spec.params[0].name, "backbone.up1.w");
        assert_eq!(spec.params[1].shape, vec![4, 2]);
        assert_eq!(spec.heads(), 1);
        assert_eq!(spec.num_weights(), 20);
        assert_eq!(spec.head_of("head0.out1.w"), Some(0));
        assert_eq!(spec.head_of("backbone.up1.w"), None);
    }

    #[test]
    fn trained_heads_covers() {
        assert!(TrainedHeads::All.covers(7));
        let some = TrainedHeads::Heads(vec![2]);
        assert!(some.covers(2));
        assert!(!some.covers(0));
    }
}
