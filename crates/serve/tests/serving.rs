//! Serving-layer integration suite: concurrent equivalence with the direct
//! engine path, hot-swap under load, admission control, deadlines,
//! graceful shutdown, and the autotuner backend adapter.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tlp::engine::{EngineConfig, InferenceEngine};
use tlp::features::FeatureExtractor;
use tlp::search::TlpScorer;
use tlp::{TlpConfig, TlpModel};
use tlp_autotuner::{
    tune_network, Candidate, CostModel, EvolutionConfig, ScoreRequest, SearchTask, SketchPolicy,
    TuningOptions,
};
use tlp_hwsim::Platform;
use tlp_schedule::{ScheduleSequence, Vocabulary};
use tlp_serve::{BatchPolicy, ModelRegistry, RemoteCostModel, ServeConfig, ServeError, Server};
use tlp_workload::{bert_tiny, AnchorOp, Subgraph};

fn task() -> SearchTask {
    SearchTask::new(
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 128,
                n: 128,
                k: 128,
            },
        ),
        Platform::i7_10510u(),
    )
}

fn candidates(n: usize, seed: u64) -> Vec<ScheduleSequence> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = task();
    (0..n)
        .map(|_| Candidate::random(&SketchPolicy::cpu(), &t.subgraph, &mut rng).sequence)
        .collect()
}

fn scorer(seed: u64) -> (TlpModel, FeatureExtractor) {
    let cfg = TlpConfig {
        seed,
        ..TlpConfig::test_scale()
    };
    let ex = FeatureExtractor::with_vocab(Vocabulary::builder().build(), cfg.seq_len, cfg.emb_size);
    (TlpModel::new(cfg), ex)
}

fn serving_registry(seed: u64) -> Arc<ModelRegistry> {
    let reg = Arc::new(ModelRegistry::new(EngineConfig::default()));
    let (model, ex) = scorer(seed);
    reg.install_tlp("m", model, ex).expect("valid model");
    reg
}

#[test]
fn concurrent_clients_match_direct_engine_bit_for_bit() {
    let t = task();
    let (model, ex) = scorer(7);
    // Direct path: private engine, single thread.
    let direct_engine = InferenceEngine::new(EngineConfig::default());
    let direct_scorer = TlpScorer {
        model,
        extractor: ex,
    };
    let server = Server::start(serving_registry(7), ServeConfig::default());

    const CLIENTS: usize = 8;
    let per_client: Vec<Vec<ScheduleSequence>> = (0..CLIENTS)
        .map(|c| candidates(12, 100 + c as u64))
        .collect();
    let expected: Vec<Vec<Option<f32>>> = per_client
        .iter()
        .map(|batch| direct_engine.score(&direct_scorer, &t, batch).0)
        .collect();

    let got: Vec<Vec<Option<f32>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .iter()
            .map(|batch| {
                let client = server.client();
                let t = &t;
                scope.spawn(move || client.score("m", t, batch).expect("score").scores)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (c, (exp, act)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(exp, act, "client {c} diverged from the direct engine");
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed, CLIENTS as u64);
    assert_eq!(snap.queue_depth, 0);
}

#[test]
fn coalesced_jobs_share_engine_batches() {
    // One paused server accumulates jobs, then a long max_wait lets a
    // single batcher coalesce them: fewer engine batches than jobs.
    let server = Server::start(
        serving_registry(3),
        ServeConfig {
            queue_capacity: 64,
            batchers: 0,
            policy: BatchPolicy {
                max_batch: 1024,
                max_wait: Duration::from_millis(50),
            },
            ..ServeConfig::default()
        },
    );
    let t = task();
    let pool = candidates(4, 5);
    let client = server.client();
    let pending: Vec<_> = (0..6)
        .map(|_| client.submit("m", &t, &pool, None).expect("admit"))
        .collect();
    // No batchers ran; everything is still queued.
    assert_eq!(client.stats().queue_depth, 6);
    drop(server); // Drop = stop; leftover jobs answered ShuttingDown.
    for p in pending {
        assert_eq!(p.wait().err(), Some(ServeError::ShuttingDown));
    }
}

#[test]
fn hot_swap_under_load_fails_zero_requests() {
    let reg = serving_registry(1);
    let server = Server::start(
        Arc::clone(&reg),
        ServeConfig {
            queue_capacity: 4096,
            ..ServeConfig::default()
        },
    );
    let t = task();
    let pool = candidates(10, 11);

    // Ground truth from both versions, computed on private engines.
    let truth = |seed: u64| {
        let (model, ex) = scorer(seed);
        let engine = InferenceEngine::new(EngineConfig::default());
        let s = TlpScorer {
            model,
            extractor: ex,
        };
        engine.score(&s, &t, &pool).0
    };
    let v1_scores = truth(1);
    let v2_scores = truth(2);
    assert_ne!(
        v1_scores, v2_scores,
        "seeds must give distinguishable models"
    );

    let stop = AtomicBool::new(false);
    let (oks, v2_seen) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let client = server.client();
                let (t, pool, stop) = (&t, &pool, &stop);
                let (v1, v2) = (&v1_scores, &v2_scores);
                scope.spawn(move || {
                    let mut oks = 0u64;
                    let mut saw_v2 = false;
                    while !stop.load(Ordering::Relaxed) {
                        let reply = client
                            .score("m", t, pool)
                            .expect("hot-swap broke a request");
                        // Every reply is exactly one of the two versions,
                        // never a mixture.
                        assert!(
                            reply.scores == *v1 || reply.scores == *v2,
                            "scores mixed across versions"
                        );
                        saw_v2 |= reply.scores == *v2;
                        oks += 1;
                    }
                    (oks, saw_v2)
                })
            })
            .collect();
        // Swap in the middle of the storm.
        std::thread::sleep(Duration::from_millis(20));
        let (m2, e2) = scorer(2);
        reg.install_tlp("m", m2, e2).expect("valid model");
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
        clients
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, false), |(a, b), (oks, saw)| (a + oks, b || saw))
    });
    assert!(oks > 0);
    // After the swap settles, new requests see the new version.
    let reply = server
        .client()
        .score("m", &t, &pool)
        .expect("post-swap score");
    assert_eq!(reply.scores, v2_scores);
    assert!(v2_seen || reply.scores == v2_scores);
    let snap = server.shutdown();
    assert_eq!(snap.expired, 0);
    assert_eq!(snap.rejected_overload, 0);
}

#[test]
fn overload_is_typed_bounded_and_immediate() {
    const CAPACITY: usize = 4;
    // Paused server (no batchers): the queue can only fill.
    let server = Server::start(
        serving_registry(9),
        ServeConfig {
            queue_capacity: CAPACITY,
            batchers: 0,
            ..ServeConfig::default()
        },
    );
    let t = task();
    let pool = candidates(2, 13);
    let client = server.client();
    let mut pending = Vec::new();
    for _ in 0..CAPACITY {
        pending.push(client.submit("m", &t, &pool, None).expect("under capacity"));
    }
    // Client K+1 is rejected instantly with the typed error — it never
    // blocks and never grows the queue.
    for _ in 0..3 {
        assert_eq!(
            client.submit("m", &t, &pool, None).err(),
            Some(ServeError::Overloaded { capacity: CAPACITY }),
        );
    }
    let snap = client.stats();
    assert_eq!(snap.queue_depth, CAPACITY, "rejected work must not enqueue");
    assert_eq!(snap.rejected_overload, 3);
    assert_eq!(snap.submitted, CAPACITY as u64);
    drop(server);
    for p in pending {
        assert!(p.wait().is_err());
    }
}

#[test]
fn unknown_model_fails_fast() {
    let server = Server::start(serving_registry(2), ServeConfig::default());
    let t = task();
    let pool = candidates(1, 17);
    assert_eq!(
        server.client().score("nope", &t, &pool).err(),
        Some(ServeError::UnknownModel("nope".to_string())),
    );
    assert_eq!(server.shutdown().unknown_model, 1);
}

#[test]
fn expired_deadline_is_dropped_server_side() {
    // A zero deadline is already expired when the batcher picks the job up,
    // so the server must answer DeadlineExceeded without scoring it.
    let server = Server::start(serving_registry(4), ServeConfig::default());
    let t = task();
    let pool = candidates(2, 19);
    let err = server
        .client()
        .score_with_deadline("m", &t, &pool, Duration::ZERO)
        .err();
    assert_eq!(err, Some(ServeError::DeadlineExceeded));
    let snap = server.shutdown();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.completed, 0);
}

#[test]
fn deadline_expires_client_side_when_server_is_stalled() {
    // Paused server: the job sits queued forever; the client must time out
    // on its own rather than hang.
    let server = Server::start(
        serving_registry(5),
        ServeConfig {
            queue_capacity: 8,
            batchers: 0,
            ..ServeConfig::default()
        },
    );
    let t = task();
    let pool = candidates(1, 23);
    let err = server
        .client()
        .score_with_deadline("m", &t, &pool, Duration::from_millis(10))
        .err();
    assert_eq!(err, Some(ServeError::DeadlineExceeded));
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let server = Server::start(
        serving_registry(6),
        ServeConfig {
            queue_capacity: 1024,
            batchers: 1,
            policy: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
            },
            ..ServeConfig::default()
        },
    );
    let t = task();
    let pool = candidates(3, 29);
    let client = server.client();
    let pending: Vec<_> = (0..32)
        .map(|_| client.submit("m", &t, &pool, None).expect("admit"))
        .collect();
    let snap = server.shutdown();
    // Every admitted request was answered with scores, none abandoned.
    for p in pending {
        let reply = p.wait().expect("drained reply");
        assert_eq!(reply.scores.len(), pool.len());
    }
    assert_eq!(snap.completed, 32);
    assert_eq!(snap.queue_depth, 0);
    // Submissions after shutdown fail typed.
    assert_eq!(
        client.submit("m", &t, &pool, None).err(),
        Some(ServeError::ShuttingDown),
    );
}

#[test]
fn remote_cost_model_matches_local_scorer_and_tunes() {
    let t = task();
    let pool = candidates(8, 31);
    let server = Server::start(serving_registry(8), ServeConfig::default());
    let remote = RemoteCostModel::new(server.client(), "m");

    // predict() through the server == predict() through the local adapter.
    let (model, ex) = scorer(8);
    let local = tlp::FeatureModel::with_engine(
        TlpScorer {
            model,
            extractor: ex,
        },
        EngineConfig::default(),
    );
    let want = local.predict(ScoreRequest::new(&t, &pool));
    let got = remote.predict(ScoreRequest::new(&t, &pool));
    assert!(want.scores().eq(got.scores()));
    assert_eq!(want.valid, got.valid);
    assert_eq!(remote.name(), "serve:m");
    assert_eq!(remote.errors(), 0);

    // The adapter drives a full (tiny) tuning run through the server.
    let net = bert_tiny(1, 32);
    let mut remote: Box<dyn CostModel> = Box::new(remote);
    let report = tune_network(
        &net,
        &Platform::i7_10510u(),
        &mut remote,
        &TuningOptions {
            rounds: net.num_tasks(),
            programs_per_round: 2,
            evolution: EvolutionConfig {
                population: 8,
                generations: 1,
                ..EvolutionConfig::default()
            },
            nominal_pool: 100,
            seed: 37,
            ..TuningOptions::default()
        },
    );
    assert_eq!(report.rounds.len(), net.num_tasks());
    let snap = server.shutdown();
    assert!(snap.completed > 0);
    assert_eq!(snap.queue_depth, 0);
}

#[test]
fn remote_cost_model_degrades_on_serve_errors() {
    // Paused zero-capacity server: every request is rejected Overloaded;
    // the adapter must yield all-invalid batches, not panic.
    let server = Server::start(
        serving_registry(10),
        ServeConfig {
            queue_capacity: 0,
            batchers: 0,
            ..ServeConfig::default()
        },
    );
    let t = task();
    let pool = candidates(4, 41);
    let remote = RemoteCostModel::new(server.client(), "m").with_deadline(Duration::from_millis(5));
    let batch = remote.predict(ScoreRequest::new(&t, &pool));
    assert_eq!(batch.len(), pool.len());
    assert_eq!(batch.num_invalid(), pool.len());
    assert_eq!(remote.errors(), 1);
}

#[test]
fn invalid_schedule_is_rejected_at_admission() {
    use tlp_schedule::{ConcretePrimitive, PrimitiveKind};

    let server = Server::start(serving_registry(12), ServeConfig::default());
    let t = task();
    let mut pool = candidates(3, 43);
    // Corrupt the middle candidate: reference a loop var that never existed.
    pool[1].push(
        ConcretePrimitive::new(PrimitiveKind::Annotation, "d")
            .with_loops(["ghost"])
            .with_extras(["parallel"]),
    );
    let err = server.client().score("m", &t, &pool).unwrap_err();
    match err {
        ServeError::InvalidSchedule { index, diagnostics } => {
            assert_eq!(index, 1);
            assert!(!diagnostics.is_empty());
        }
        other => panic!("expected InvalidSchedule, got {other:?}"),
    }
    let snap = server.shutdown();
    assert_eq!(snap.rejected_invalid, 1);
    assert_eq!(snap.completed, 0, "invalid request must never be scored");
}

#[test]
fn admission_validation_can_be_disabled() {
    // With the gate off, the same corrupted schedule is admitted (a paused
    // server just queues it — execution would mask it as unscoreable).
    let server = Server::start(
        serving_registry(14),
        ServeConfig {
            batchers: 0,
            validate_admission: false,
            validate_install: true,
            ..ServeConfig::default()
        },
    );
    let t = task();
    let mut pool = candidates(1, 47);
    pool[0].push(
        tlp_schedule::ConcretePrimitive::new(tlp_schedule::PrimitiveKind::Fuse, "d")
            .with_loops(["ghost_a", "ghost_b"]),
    );
    let pending = server
        .client()
        .submit("m", &t, &pool, None)
        .expect("admitted");
    assert_eq!(server.client().stats().queue_depth, 1);
    drop(server);
    assert_eq!(pending.wait().err(), Some(ServeError::ShuttingDown));
}
