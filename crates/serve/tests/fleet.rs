//! Fleet integration suite: consistent-hash routing, tenant-independent
//! keys, failover/failback through breakers and health gossip, quota
//! behavior at the router, fleet-wide aggregation, and the property test
//! that scores never mix across shards or tenants.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;
use tlp::features::FeatureExtractor;
use tlp::{TlpConfig, TlpModel};
use tlp_autotuner::{Candidate, SearchTask, SketchPolicy};
use tlp_hwsim::Platform;
use tlp_schedule::{ScheduleSequence, Vocabulary};
use tlp_serve::{
    BatchPolicy, BreakerConfig, BreakerState, FleetConfig, FleetLoadOptions, HealthPolicy,
    RemoteCostModel, ServeConfig, ServeError, ServingFleet, SimServiceModel, TenantPolicy,
    TenantSpec,
};
use tlp_workload::{AnchorOp, Subgraph};

fn dense_task(m: i64, n: i64, k: i64) -> SearchTask {
    SearchTask::new(
        Subgraph::new("d", AnchorOp::Dense { m, n, k }),
        Platform::i7_10510u(),
    )
}

fn candidates(task: &SearchTask, n: usize, seed: u64) -> Vec<ScheduleSequence> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Candidate::random(&SketchPolicy::cpu(), &task.subgraph, &mut rng).sequence)
        .collect()
}

fn scorer(seed: u64) -> (TlpModel, FeatureExtractor) {
    let cfg = TlpConfig {
        seed,
        ..TlpConfig::test_scale()
    };
    let ex = FeatureExtractor::with_vocab(Vocabulary::builder().build(), cfg.seq_len, cfg.emb_size);
    (TlpModel::new(cfg), ex)
}

/// A fleet of `shards` with one batcher each and no coalescing wait (the
/// tests drive requests sequentially, so waiting for stragglers only adds
/// wall-clock time).
fn fleet_config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        serve: ServeConfig {
            batchers: 1,
            policy: BatchPolicy {
                max_wait: Duration::ZERO,
                ..BatchPolicy::default()
            },
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Starts a fleet with the *same* model (seed 7) on every shard.
fn uniform_fleet(shards: usize) -> ServingFleet {
    let f = ServingFleet::start(fleet_config(shards));
    let (model, ex) = scorer(7);
    f.install_tlp("m", &model, &ex).expect("valid model");
    f
}

/// Ground truth for one shard: score directly through that shard's own
/// registry engine, bypassing the router entirely.
fn shard_truth(
    fleet: &ServingFleet,
    shard: usize,
    task: &SearchTask,
    batch: &[ScheduleSequence],
) -> Vec<Option<f32>> {
    fleet
        .registry(shard)
        .resolve("m")
        .expect("installed")
        .score(task, batch)
        .0
}

#[test]
fn fleet_scores_match_single_shard_bit_for_bit() {
    let t = dense_task(128, 128, 128);
    let pool = candidates(&t, 8, 3);
    let single = uniform_fleet(1);
    let quad = uniform_fleet(4);
    let want = single
        .client()
        .score_detailed("a", "m", &t, &pool, None)
        .expect("single shard")
        .reply
        .scores;
    let got = quad
        .client()
        .score_detailed("b", "m", &t, &pool, None)
        .expect("quad fleet")
        .reply
        .scores;
    assert_eq!(want, got, "sharding and tenancy must not change scores");
    single.shutdown();
    quad.shutdown();
}

#[test]
fn routing_is_sticky_and_tenant_independent() {
    let fleet = uniform_fleet(4);
    let client = fleet.client();
    for (i, (m, n, k)) in [(64, 64, 64), (128, 64, 32), (256, 128, 64), (32, 32, 256)]
        .into_iter()
        .enumerate()
    {
        let t = dense_task(m, n, k);
        let pool = candidates(&t, 4, 100 + i as u64);
        let owner = client.owner_of("m", &t);
        for tenant in ["alice", "bob", "default"] {
            let r = client
                .score_detailed(tenant, "m", &t, &pool, None)
                .expect("healthy fleet");
            assert_eq!(r.shard, owner, "tenant `{tenant}` must not move the key");
            assert_eq!(r.failovers, 0);
        }
    }
    let snap = fleet.snapshot();
    assert_eq!(snap.router.routed, 12);
    assert_eq!(snap.router.failovers, 0);
    assert_eq!(snap.completed, 12);
    fleet.shutdown();
}

#[test]
fn failover_on_wedged_shard_then_failback_after_recovery() {
    let mut config = fleet_config(3);
    config.breaker = BreakerConfig {
        failure_threshold: 2,
        cooldown_calls: 3,
    };
    let fleet = ServingFleet::start(config);
    let (model, ex) = scorer(7);
    fleet.install_tlp("m", &model, &ex).expect("valid model");
    let client = fleet.client();
    let t = dense_task(96, 96, 96);
    let pool = candidates(&t, 4, 9);
    let order = client.route_order("m", &t);
    let (owner, backup) = (order[0], order[1]);

    // Wedge the owner: every request to it fails, so requests fail over to
    // the backup — none are lost.
    client.fault(owner, 1.0);
    for i in 0..8 {
        let r = client
            .score_detailed("alice", "m", &t, &pool, None)
            .unwrap_or_else(|e| panic!("request {i} lost under failover: {e}"));
        assert_eq!(r.shard, backup, "request {i} must serve from the backup");
        assert_eq!(r.failovers, 1, "request {i} pays exactly one hop");
    }

    // Satellite: per-endpoint breaker rows name the tripped shard.
    let remote = RemoteCostModel::new(client.clone(), "m");
    let rows = remote.endpoint_breakers();
    assert_eq!(rows[0].endpoint, "client");
    let owner_row = &rows[1 + owner];
    assert_eq!(owner_row.endpoint, format!("shard-{owner}"));
    assert_eq!(owner_row.breaker.state, BreakerState::Open);
    assert!(owner_row.breaker.trips >= 1);
    for (i, row) in rows.iter().enumerate().skip(1) {
        if i != 1 + owner {
            assert_eq!(
                row.breaker.state,
                BreakerState::Closed,
                "only the faulted shard may trip ({})",
                row.endpoint
            );
        }
    }

    // Recovery: clear the fault and keep driving; the call-count cooldown
    // lets a half-open probe through, it succeeds, and traffic fails back.
    client.fault(owner, 0.0);
    let mut failback_at = None;
    for i in 0..12 {
        let r = client
            .score_detailed("alice", "m", &t, &pool, None)
            .expect("request during recovery");
        if r.shard == owner {
            failback_at = Some(i);
            break;
        }
    }
    assert!(
        failback_at.is_some(),
        "traffic must fail back to the owner after recovery"
    );
    let snap = client.breaker(owner);
    assert_eq!(snap.state, BreakerState::Closed);
    assert!(snap.recoveries >= 1, "half-open probe recovery is counted");
    fleet.shutdown();
}

#[test]
fn health_gossip_trips_breaker_before_consecutive_failure_threshold() {
    let mut config = fleet_config(3);
    // The breaker's own threshold is unreachable in this test: only the
    // published health snapshot can trip it.
    config.breaker = BreakerConfig {
        failure_threshold: 1000,
        cooldown_calls: 1000,
    };
    config.health = HealthPolicy {
        publish_every: 6,
        min_window: 6,
        max_error_rate: 0.5,
    };
    let fleet = ServingFleet::start(config);
    let (model, ex) = scorer(7);
    fleet.install_tlp("m", &model, &ex).expect("valid model");
    let client = fleet.client();
    let t = dense_task(80, 80, 80);
    let pool = candidates(&t, 4, 21);
    let owner = client.owner_of("m", &t);

    client.fault(owner, 1.0);
    for _ in 0..8 {
        client
            .score_detailed("x", "m", &t, &pool, None)
            .expect("failover keeps requests alive");
    }
    assert_eq!(
        client.breaker(owner).state,
        BreakerState::Open,
        "published error rate 1.0 must trip the owner via gossip"
    );
    let stats = client.stats();
    assert!(stats.gossip_trips >= 1, "trip must be gossip-driven");
    let health = client.health();
    let h = health[owner].as_ref().expect("owner window published");
    assert!(h.sick);
    assert!(h.error_rate > 0.5);
    fleet.shutdown();
}

#[test]
fn tenant_over_quota_is_returned_not_failed_over() {
    let mut config = fleet_config(2);
    config.serve = ServeConfig {
        queue_capacity: 2,
        batchers: 0, // paused: queued jobs sit so quota state is observable
        tenants: TenantPolicy::with_classes(vec![
            TenantSpec::new("greedy", 1),
            TenantSpec::new("light", 1),
        ]),
        ..ServeConfig::default()
    };
    let fleet = ServingFleet::start(config);
    let (model, ex) = scorer(7);
    fleet.install_tlp("m", &model, &ex).expect("valid model");
    let client = fleet.client();
    let t = dense_task(72, 72, 72);
    let pool = candidates(&t, 2, 31);
    let owner = client.owner_of("m", &t);

    // Fill greedy's share (2 * 1/2 = 1 slot) on the owner shard directly.
    let _held = client
        .shard_client(owner)
        .submit_as("greedy", "m", &t, &pool, None)
        .expect("first job fits the share");
    let before = client.stats().failovers;
    let err = client
        .score_detailed("greedy", "m", &t, &pool, None)
        .expect_err("greedy is at its share");
    assert!(
        matches!(err, ServeError::TenantOverQuota { ref tenant, .. } if tenant == "greedy"),
        "got {err:?}"
    );
    assert_eq!(
        client.stats().failovers,
        before,
        "quota rejection must not spill load onto other shards"
    );
    // The other tenant's share is untouched.
    let _ok = client
        .shard_client(owner)
        .submit_as("light", "m", &t, &pool, None)
        .expect("light tenant admits within its own share");
    fleet.shutdown();
}

#[test]
fn fleet_snapshot_aggregates_shards_and_tenants() {
    let fleet = uniform_fleet(3);
    let client = fleet.client();
    let tasks: Vec<SearchTask> = [(64, 64, 64), (96, 64, 32), (128, 96, 48)]
        .into_iter()
        .map(|(m, n, k)| dense_task(m, n, k))
        .collect();
    for (i, t) in tasks.iter().enumerate() {
        let pool = candidates(t, 4, 200 + i as u64);
        for tenant in ["a", "b"] {
            client
                .score_detailed(tenant, "m", t, &pool, None)
                .expect("healthy fleet");
        }
    }
    let snap = fleet.snapshot();
    assert_eq!(snap.shards.len(), 3);
    assert_eq!(snap.router.routed, 6);
    assert_eq!(snap.completed, 6);
    assert_eq!(
        snap.shards.iter().map(|s| s.serve.completed).sum::<u64>(),
        6
    );
    let tenant_rows: Vec<&str> = snap
        .shards
        .iter()
        .flat_map(|s| s.serve.tenants.iter().map(|r| r.tenant.as_str()))
        .collect();
    assert!(tenant_rows.contains(&"a") && tenant_rows.contains(&"b"));
    let json = snap.to_json();
    assert!(json.contains("\"router\"") && json.contains("\"gossip_trips\""));
    fleet.shutdown();
}

#[test]
fn sim_completes_all_requests_under_chaos_and_rate_zero_is_bit_identical() {
    let t1 = dense_task(64, 64, 64);
    let t2 = dense_task(96, 96, 48);
    let tasks = vec![t1, t2];
    let pools: Vec<Vec<ScheduleSequence>> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| candidates(t, 24, 400 + i as u64))
        .collect();
    let opts = FleetLoadOptions {
        clients: 8,
        requests_per_client: 4,
        batch: 4,
        tenants: vec!["a".into(), "b".into()],
    };
    let service = SimServiceModel::default();
    let run = |fault: Option<(usize, f64)>| {
        let fleet = uniform_fleet(2);
        let client = fleet.client();
        if let Some((shard, rate)) = fault {
            client.fault(shard, rate);
        }
        let report = tlp_serve::run_fleet_sim(&client, "m", &tasks, &pools, &opts, &service);
        fleet.shutdown();
        report
    };
    let clean = run(None);
    let zero = run(Some((0, 0.0)));
    assert_eq!(
        clean.score_digest, zero.score_digest,
        "rate 0 must be inert"
    );
    assert_eq!(clean.latency_digest, zero.latency_digest);
    assert_eq!(clean.ok, 32);
    assert_eq!(clean.errors, 0);

    let chaotic = run(Some((0, 0.2)));
    assert_eq!(chaotic.ok, 32, "chaos at rate 0.2 must lose no jobs");
    assert_eq!(chaotic.errors, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The no-mixing property: for any task and any pair of tenants, the
    /// fleet's reply is bit-identical to scoring directly on the shard it
    /// reports — through a full fault → failover → recover → failback
    /// cycle. Shards deliberately hold *divergent* models (different init
    /// seeds), so any cross-shard blending or misrouting would change the
    /// score bits; tenancy must never change bits or routing at all.
    #[test]
    fn scores_never_mix_across_shards_or_tenants(
        dim_idx in 0usize..4,
        tenant_a in "[a-z]{1,8}",
        tenant_b in "[a-z]{1,8}",
        cand_seed in 0u64..1000,
    ) {
        let mut config = fleet_config(3);
        config.breaker = BreakerConfig { failure_threshold: 1, cooldown_calls: 2 };
        let fleet = ServingFleet::start(config);
        for shard in 0..3 {
            let (model, ex) = scorer(1000 + shard as u64);
            fleet
                .registry(shard)
                .install_tlp("m", model, ex)
                .expect("valid model");
        }
        let client = fleet.client();
        let dims = [(48i64, 48i64, 48i64), (64, 96, 32), (96, 64, 64), (128, 48, 96)][dim_idx];
        let t = dense_task(dims.0, dims.1, dims.2);
        let pool = candidates(&t, 4, cand_seed);
        let order = client.route_order("m", &t);
        let (owner, backup) = (order[0], order[1]);

        // Healthy: both tenants land on the owner, bits match its model.
        let truth_owner = shard_truth(&fleet, owner, &t, &pool);
        for tenant in [tenant_a.as_str(), tenant_b.as_str()] {
            let r = client.score_detailed(tenant, "m", &t, &pool, None).expect("healthy");
            prop_assert_eq!(r.shard, owner);
            prop_assert_eq!(&r.reply.scores, &truth_owner);
        }

        // Failover: replies now carry exactly the backup's model bits.
        client.fault(owner, 1.0);
        let truth_backup = shard_truth(&fleet, backup, &t, &pool);
        for tenant in [tenant_a.as_str(), tenant_b.as_str()] {
            let r = client.score_detailed(tenant, "m", &t, &pool, None).expect("failover");
            prop_assert_eq!(r.shard, backup);
            prop_assert_eq!(&r.reply.scores, &truth_backup);
        }

        // Failback: after recovery the owner serves its own bits again.
        client.fault(owner, 0.0);
        let mut failed_back = false;
        for _ in 0..8 {
            let r = client.score_detailed(tenant_a.as_str(), "m", &t, &pool, None).expect("recovery");
            let want = shard_truth(&fleet, r.shard, &t, &pool);
            prop_assert_eq!(&r.reply.scores, &want, "every reply matches its serving shard");
            if r.shard == owner {
                failed_back = true;
                break;
            }
        }
        prop_assert!(failed_back, "traffic must return to the owner");
        fleet.shutdown();
    }
}
