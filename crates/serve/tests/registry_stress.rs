//! Stress test of [`ModelRegistry`] hot-swap under a concurrent publisher:
//! readers hammering `resolve` + `score` while another thread continuously
//! installs new versions must (a) never surface a request failure and
//! (b) never observe a batch that mixes scores from two versions.
//!
//! Version mixing is detectable without instrumentation: each installed
//! model is one of `k` seeds with a distinct, precomputed score vector over
//! a fixed schedule pool, so any cross-version contamination yields a batch
//! matching no seed's vector.

#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tlp::{FeatureExtractor, TlpConfig, TlpModel};
use tlp_autotuner::{Candidate, SearchTask, SketchPolicy};
use tlp_hwsim::Platform;
use tlp_schedule::{ScheduleSequence, Vocabulary};
use tlp_serve::ModelRegistry;
use tlp_workload::{AnchorOp, Subgraph};

const SEEDS: u64 = 4;
const INSTALLS: usize = 60;
const READERS: usize = 4;

fn model_for_seed(seed: u64) -> (TlpModel, FeatureExtractor) {
    let cfg = TlpConfig {
        seed,
        ..TlpConfig::test_scale()
    };
    let ex = FeatureExtractor::with_vocab(Vocabulary::builder().build(), cfg.seq_len, cfg.emb_size);
    (TlpModel::new(cfg), ex)
}

fn schedule_pool(task: &SearchTask) -> Vec<ScheduleSequence> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(1234);
    (0..8)
        .map(|_| Candidate::random(&SketchPolicy::cpu(), &task.subgraph, &mut rng).sequence)
        .collect()
}

fn score_bits(scores: &[Option<f32>]) -> Vec<Option<u32>> {
    scores.iter().map(|s| s.map(f32::to_bits)).collect()
}

#[test]
fn hot_swap_under_concurrent_publisher_never_mixes_or_fails() {
    let task = SearchTask::new(
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 64,
                n: 64,
                k: 64,
            },
        ),
        Platform::i7_10510u(),
    );
    let pool = schedule_pool(&task);

    // Precompute each seed's expected score vector through the same
    // engine/scorer path the stressed registry uses.
    let expected: Vec<Vec<Option<u32>>> = (0..SEEDS)
        .map(|seed| {
            let probe = ModelRegistry::default();
            let (m, ex) = model_for_seed(seed);
            probe.install_tlp("probe", m, ex).expect("valid model");
            let v = probe.resolve("probe").expect("probe installed");
            let (scores, _) = v.score(&task, &pool);
            assert!(
                scores.iter().all(|s| s.is_some()),
                "pool must be fully scorable"
            );
            score_bits(&scores)
        })
        .collect();
    for a in 0..SEEDS as usize {
        for b in (a + 1)..SEEDS as usize {
            assert_ne!(expected[a], expected[b], "seeds must be distinguishable");
        }
    }

    let registry = Arc::new(ModelRegistry::default());
    let (m0, e0) = model_for_seed(0);
    registry.install_tlp("m", m0, e0).expect("valid model");

    let done = AtomicBool::new(false);
    let failures = AtomicU64::new(0);
    let mixed = AtomicU64::new(0);
    let batches = AtomicU64::new(0);

    std::thread::scope(|s| {
        let publisher = {
            let registry = Arc::clone(&registry);
            let done = &done;
            s.spawn(move || {
                for i in 1..INSTALLS {
                    let (m, ex) = model_for_seed(i as u64 % SEEDS);
                    registry.install_tlp("m", m, ex).expect("valid model");
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let registry = Arc::clone(&registry);
            let (task, pool, expected) = (&task, &pool, &expected);
            let (done, failures, mixed, batches) = (&done, &failures, &mixed, &batches);
            readers.push(s.spawn(move || loop {
                let stop = done.load(Ordering::SeqCst);
                match registry.resolve_required("m") {
                    Ok(version) => {
                        let (scores, _) = version.score(task, pool);
                        batches.fetch_add(1, Ordering::Relaxed);
                        let bits = score_bits(&scores);
                        if !expected.contains(&bits) {
                            mixed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if stop {
                    break;
                }
            }));
        }
        publisher.join().expect("publisher");
        for r in readers {
            r.join().expect("reader");
        }
    });

    assert!(
        batches.load(Ordering::Relaxed) > 0,
        "readers scored batches"
    );
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "a hot-swap surfaced a request failure"
    );
    assert_eq!(
        mixed.load(Ordering::Relaxed),
        0,
        "a batch mixed scores across versions"
    );
}

#[test]
fn removed_then_reinstalled_name_keeps_serving_held_references() {
    // A reader that resolved a version before `remove` keeps scoring on it;
    // reinstalling under the same name starts a fresh version lineage.
    let task = SearchTask::new(
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 32,
                n: 32,
                k: 32,
            },
        ),
        Platform::i7_10510u(),
    );
    let pool = schedule_pool(&task);
    let registry = ModelRegistry::default();
    let (m, ex) = model_for_seed(1);
    registry.install_tlp("m", m, ex).expect("valid model");
    let held = registry.resolve("m").expect("installed");
    let (before, _) = held.score(&task, &pool);
    assert!(registry.remove("m"));
    // The held Arc still serves identical scores after removal.
    let (after, _) = held.score(&task, &pool);
    assert_eq!(score_bits(&before), score_bits(&after));
    let (m2, e2) = model_for_seed(2);
    let v2 = registry.install_tlp("m", m2, e2).expect("valid model");
    assert!(v2 > held.version());
}
