//! The serving fleet: N shards, one router, aggregated observability.
//!
//! [`ServingFleet`] is the assembly: it starts `shards` independent
//! [`Server`]s — each with a **private** [`ModelRegistry`] and batcher
//! pool, so per-shard score caches stay hot for the keys the ring assigns
//! them — and fronts them with a [`FleetClient`]. Installs fan out to every
//! shard (each shard clones the model), so any shard can answer any key:
//! that is what makes failover loss-free rather than partial.
//!
//! [`FleetSnapshot`] is the fleet-wide view: router counters, per-shard
//! breaker/health/chaos rows, and each shard's full [`ServeSnapshot`],
//! with the fleet totals summed — one JSON document an operator (or the
//! `fleet-bench` CLI) can read top-down.

use crate::backend::{BreakerConfig, BreakerSnapshot};
use crate::health::{HealthPolicy, ShardHealth};
use crate::registry::ModelRegistry;
use crate::router::{FleetClient, RouterStats};
use crate::server::{ServeConfig, Server};
use crate::stats::ServeSnapshot;
use serde::Serialize;
use std::sync::Arc;
use tlp::engine::EngineConfig;
use tlp::persist::{PersistError, SavedTlp};
use tlp::{FeatureExtractor, TlpModel};

/// Fleet sizing and fault-handling knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of server shards.
    pub shards: usize,
    /// Per-shard server configuration (queue, batchers, QoS policy).
    pub serve: ServeConfig,
    /// Per-shard engine configuration (cache, micro-batching).
    pub engine: EngineConfig,
    /// Router-side per-shard breaker thresholds.
    pub breaker: BreakerConfig,
    /// Health-gossip cadence and sickness thresholds.
    pub health: HealthPolicy,
    /// Seed for the per-shard chaos wrappers (rate 0 until faulted).
    pub chaos_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            serve: ServeConfig::default(),
            engine: EngineConfig::default(),
            breaker: BreakerConfig::default(),
            health: HealthPolicy::default(),
            chaos_seed: 0x5eed_f1ee_7001_cafe,
        }
    }
}

/// One shard's row in a [`FleetSnapshot`].
#[derive(Clone, Debug, Serialize)]
pub struct ShardSnapshot {
    /// Shard index (also its ring identity).
    pub shard: usize,
    /// Router-side breaker counters for this shard.
    pub breaker: BreakerSnapshot,
    /// Latest published health snapshot, if the shard's window has filled.
    pub health: Option<ShardHealth>,
    /// Failures injected by the shard's chaos wrapper.
    pub chaos_injected: u64,
    /// The shard server's own stats snapshot.
    pub serve: ServeSnapshot,
}

/// A point-in-time fleet-wide aggregation of per-shard state.
#[derive(Clone, Debug, Serialize)]
pub struct FleetSnapshot {
    /// Router counters (routed requests, failover hops, gossip trips).
    pub router: RouterStats,
    /// Sum of per-shard admitted requests.
    pub submitted: u64,
    /// Sum of per-shard completed requests.
    pub completed: u64,
    /// Sum of per-shard scored candidates.
    pub candidates: u64,
    /// Per-shard rows, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl FleetSnapshot {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

/// N server shards behind one consistent-hash router.
pub struct ServingFleet {
    servers: Vec<Server>,
    client: FleetClient,
}

impl ServingFleet {
    /// Starts `config.shards` servers, each over a private registry, and
    /// the router in front of them.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn start(config: FleetConfig) -> ServingFleet {
        assert!(config.shards > 0, "fleet needs at least one shard");
        let servers: Vec<Server> = (0..config.shards)
            .map(|_| {
                Server::start(
                    Arc::new(ModelRegistry::new(config.engine)),
                    config.serve.clone(),
                )
            })
            .collect();
        let clients = servers.iter().map(Server::client).collect();
        let client = FleetClient::new(clients, config.chaos_seed, config.breaker, config.health);
        ServingFleet { servers, client }
    }

    /// A routing client for this fleet (cheap to clone per caller thread).
    pub fn client(&self) -> FleetClient {
        self.client.clone()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.servers.len()
    }

    /// One shard's registry (tests install divergent models through this to
    /// prove routing *doesn't* mix shards).
    pub fn registry(&self, shard: usize) -> &Arc<ModelRegistry> {
        self.servers[shard].registry()
    }

    /// Installs a snapshot on every shard under `name`. All-or-error: the
    /// first rejecting shard aborts the fan-out (earlier shards keep the
    /// install — registries audit independently, so a rejection on one
    /// means the same rejection everywhere in practice).
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`PersistError`].
    pub fn install(&self, name: &str, snapshot: &SavedTlp) -> Result<Vec<u64>, PersistError> {
        self.servers
            .iter()
            .map(|s| s.registry().install(name, snapshot))
            .collect()
    }

    /// Installs an in-memory single-task model on every shard (each shard
    /// gets its own clone, so shard caches never share mutable state).
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`PersistError`].
    pub fn install_tlp(
        &self,
        name: &str,
        model: &TlpModel,
        extractor: &FeatureExtractor,
    ) -> Result<Vec<u64>, PersistError> {
        self.servers
            .iter()
            .map(|s| {
                s.registry()
                    .install_tlp(name, model.clone(), extractor.clone())
            })
            .collect()
    }

    /// The fleet-wide snapshot: router counters plus one row per shard.
    pub fn snapshot(&self) -> FleetSnapshot {
        let serve: Vec<ServeSnapshot> = self.servers.iter().map(Server::stats).collect();
        self.assemble(serve)
    }

    /// Graceful shutdown: drains every shard and returns the final
    /// fleet-wide snapshot.
    pub fn shutdown(self) -> FleetSnapshot {
        let ServingFleet { servers, client } = self;
        let serve: Vec<ServeSnapshot> = servers.into_iter().map(Server::shutdown).collect();
        ServingFleet::assemble_with(&client, serve)
    }

    fn assemble(&self, serve: Vec<ServeSnapshot>) -> FleetSnapshot {
        ServingFleet::assemble_with(&self.client, serve)
    }

    fn assemble_with(client: &FleetClient, serve: Vec<ServeSnapshot>) -> FleetSnapshot {
        let health = client.health();
        let shards: Vec<ShardSnapshot> = serve
            .into_iter()
            .enumerate()
            .map(|(i, snap)| ShardSnapshot {
                shard: i,
                breaker: client.breaker(i),
                health: health.get(i).cloned().flatten(),
                chaos_injected: client.injected(i),
                serve: snap,
            })
            .collect();
        FleetSnapshot {
            router: client.stats(),
            submitted: shards.iter().map(|s| s.serve.submitted).sum(),
            completed: shards.iter().map(|s| s.serve.completed).sum(),
            candidates: shards.iter().map(|s| s.serve.candidates).sum(),
            shards,
        }
    }
}
