//! Deterministic gossip-style shard health.
//!
//! Every routed request's outcome is recorded against its shard in a
//! [`HealthBoard`]. When a shard's window fills ([`HealthPolicy::
//! publish_every`] outcomes), the board *publishes* a [`ShardHealth`]
//! snapshot — the deterministic stand-in for a gossip round: instead of
//! racing UDP packets, health propagates on a fixed request-count cadence,
//! so every test run publishes the same snapshots in the same order. A
//! published snapshot whose windowed error rate crosses
//! [`HealthPolicy::max_error_rate`] is marked *sick*; the router responds
//! by tripping that shard's circuit breaker (see
//! [`CircuitBreaker::trip`](crate::CircuitBreaker::trip)), which is what
//! makes failover proactive — the fleet stops sending a shard traffic
//! because its published error rate is bad, not merely because one client
//! saw enough consecutive failures itself.

use crate::backend::BreakerState;
use serde::Serialize;

/// Health-publication cadence and sickness thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Outcomes per shard between published snapshots (the "gossip
    /// interval", measured in requests for determinism).
    pub publish_every: u64,
    /// Minimum outcomes in a window before it can mark a shard sick — a
    /// single failed request in a tiny window is noise, not sickness.
    pub min_window: u64,
    /// Windowed error rate above which a published snapshot is sick.
    pub max_error_rate: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            publish_every: 32,
            min_window: 8,
            max_error_rate: 0.5,
        }
    }
}

/// One published per-shard health snapshot.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Publication counter for this shard (1 = first snapshot).
    pub epoch: u64,
    /// Outcomes in the published window.
    pub window_calls: u64,
    /// Failures in the published window.
    pub window_errors: u64,
    /// `window_errors / window_calls`.
    pub error_rate: f64,
    /// The shard's admission-queue depth sampled at publish time.
    pub queue_depth: usize,
    /// The router-side breaker state for this shard at publish time.
    pub breaker: BreakerState,
    /// Whether this snapshot crosses the sickness thresholds
    /// (`window_calls ≥ min_window` and `error_rate > max_error_rate`).
    pub sick: bool,
}

#[derive(Debug, Default)]
struct ShardWindow {
    calls: u64,
    errors: u64,
    epoch: u64,
    last: Option<ShardHealth>,
}

/// Per-shard windowed outcome counters with fixed-cadence publication.
#[derive(Debug)]
pub struct HealthBoard {
    policy: HealthPolicy,
    shards: Vec<ShardWindow>,
}

impl HealthBoard {
    /// A board tracking `shards` shards under `policy`.
    pub fn new(shards: usize, policy: HealthPolicy) -> Self {
        HealthBoard {
            policy,
            shards: (0..shards).map(|_| ShardWindow::default()).collect(),
        }
    }

    /// The publication policy.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Whether the next [`HealthBoard::record`] for `shard` will publish —
    /// lets the caller sample expensive publish-time fields (queue depth)
    /// only when they will actually be used.
    pub fn due(&self, shard: usize) -> bool {
        self.shards[shard].calls + 1 >= self.policy.publish_every.max(1)
    }

    /// Records one routed outcome for `shard`. When the window fills, rolls
    /// it and returns the freshly published [`ShardHealth`] (the caller —
    /// the router — samples `queue_depth` and `breaker` at that moment).
    pub fn record(
        &mut self,
        shard: usize,
        ok: bool,
        queue_depth: usize,
        breaker: BreakerState,
    ) -> Option<ShardHealth> {
        let publish_every = self.policy.publish_every.max(1);
        let w = &mut self.shards[shard];
        w.calls += 1;
        if !ok {
            w.errors += 1;
        }
        if w.calls < publish_every {
            return None;
        }
        w.epoch += 1;
        let error_rate = w.errors as f64 / w.calls as f64;
        let health = ShardHealth {
            shard,
            epoch: w.epoch,
            window_calls: w.calls,
            window_errors: w.errors,
            error_rate,
            queue_depth,
            breaker,
            sick: w.calls >= self.policy.min_window && error_rate > self.policy.max_error_rate,
        };
        w.calls = 0;
        w.errors = 0;
        w.last = Some(health.clone());
        Some(health)
    }

    /// The most recently published snapshot for `shard`, if any.
    pub fn latest(&self, shard: usize) -> Option<&ShardHealth> {
        self.shards.get(shard).and_then(|w| w.last.as_ref())
    }

    /// Latest published snapshot per shard (`None` where nothing has
    /// published yet), for fleet-wide aggregation.
    pub fn snapshot(&self) -> Vec<Option<ShardHealth>> {
        self.shards.iter().map(|w| w.last.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn policy(publish_every: u64) -> HealthPolicy {
        HealthPolicy {
            publish_every,
            ..HealthPolicy::default()
        }
    }

    #[test]
    fn publishes_on_fixed_cadence() {
        let mut b = HealthBoard::new(2, policy(4));
        for i in 0..3 {
            assert!(b.record(0, true, 0, BreakerState::Closed).is_none(), "{i}");
        }
        let h = b
            .record(0, false, 7, BreakerState::Closed)
            .expect("window full");
        assert_eq!(h.epoch, 1);
        assert_eq!(h.window_calls, 4);
        assert_eq!(h.window_errors, 1);
        assert_eq!(h.queue_depth, 7);
        assert!(!h.sick, "25% errors under the 50% threshold");
        // The window rolled; the other shard is untouched.
        assert!(b.record(0, true, 0, BreakerState::Closed).is_none());
        assert!(b.latest(1).is_none());
        assert_eq!(b.latest(0).map(|h| h.epoch), Some(1));
    }

    #[test]
    fn sick_requires_min_window_and_rate() {
        let mut b = HealthBoard::new(
            1,
            HealthPolicy {
                publish_every: 8,
                min_window: 8,
                max_error_rate: 0.5,
            },
        );
        for _ in 0..7 {
            b.record(0, false, 0, BreakerState::Closed);
        }
        let h = b.record(0, false, 0, BreakerState::Closed).expect("full");
        assert!(h.sick, "8/8 errors crosses the threshold");
        // A small window never marks sick even at 100% errors.
        let mut small = HealthBoard::new(
            1,
            HealthPolicy {
                publish_every: 4,
                min_window: 8,
                max_error_rate: 0.5,
            },
        );
        for _ in 0..3 {
            small.record(0, false, 0, BreakerState::Closed);
        }
        let h = small
            .record(0, false, 0, BreakerState::Closed)
            .expect("full");
        assert!(!h.sick, "window below min_window is never sick");
    }

    #[test]
    fn identical_outcome_streams_publish_identically() {
        let run = || {
            let mut b = HealthBoard::new(1, policy(4));
            let mut published = Vec::new();
            for i in 0..32u32 {
                if let Some(h) = b.record(0, i % 3 != 0, 0, BreakerState::Closed) {
                    published.push(h);
                }
            }
            published
        };
        assert_eq!(run(), run());
    }
}
