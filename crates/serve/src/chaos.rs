//! Fault injection for the serving path.
//!
//! [`FlakyTransport`] wraps any [`ScoreTransport`] and deterministically
//! fails a configured fraction of requests with a transient
//! [`ServeError`] before they reach the server — the client-side analogue
//! of the hardware-measurement [`FaultModel`](tlp_hwsim::FaultModel). The
//! failure schedule is a pure hash of `(seed, request counter)`, so chaos
//! tests are reproducible, and the rate can be changed mid-run to model a
//! server that gets sick and then recovers.

use crate::backend::ScoreTransport;
use crate::error::ServeError;
use crate::server::ScoreReply;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tlp_autotuner::SearchTask;
use tlp_schedule::ScheduleSequence;

/// splitmix64 finalizer: one independent uniform draw per request. Also
/// used by the fleet router to spread ring points.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`ScoreTransport`] that deterministically injects transient failures.
///
/// All state is atomic (the rate is stored as `f64` bits), so one
/// `FlakyTransport` can sit in front of a fleet shard shared across
/// threads; the failure draw stays a pure function of `(seed, counter)`.
pub struct FlakyTransport<T: ScoreTransport> {
    inner: T,
    seed: u64,
    fail_rate_bits: AtomicU64,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl<T: ScoreTransport> FlakyTransport<T> {
    /// Wraps `inner`, failing each request with probability `fail_rate`
    /// (drawn deterministically from `seed` and the request counter).
    pub fn new(inner: T, seed: u64, fail_rate: f64) -> Self {
        FlakyTransport {
            inner,
            seed,
            fail_rate_bits: AtomicU64::new(fail_rate.to_bits()),
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Changes the failure rate mid-run (e.g. `1.0` to wedge the server,
    /// then `0.0` to let a half-open breaker probe succeed).
    pub fn set_fail_rate(&self, rate: f64) {
        self.fail_rate_bits.store(rate.to_bits(), Ordering::Relaxed);
    }

    /// The current failure rate.
    pub fn fail_rate(&self) -> f64 {
        f64::from_bits(self.fail_rate_bits.load(Ordering::Relaxed))
    }

    /// Requests seen so far (injected failures included).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: ScoreTransport> FlakyTransport<T> {
    /// Draws the next failure (if any) from the deterministic schedule.
    fn draw_failure(&self) -> Option<ServeError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let rate = self.fail_rate();
        if rate > 0.0 {
            let u = (mix(self.seed ^ n) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < rate {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // Cycle the transient classes so retry handling sees all of
                // them.
                return Some(match n % 3 {
                    0 => ServeError::Overloaded { capacity: 0 },
                    1 => ServeError::DeadlineExceeded,
                    _ => ServeError::Disconnected,
                });
            }
        }
        None
    }
}

impl<T: ScoreTransport> ScoreTransport for FlakyTransport<T> {
    fn score(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        match self.draw_failure() {
            Some(err) => Err(err),
            None => self.inner.score(model, task, schedules, deadline),
        }
    }

    fn score_as(
        &self,
        tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        match self.draw_failure() {
            Some(err) => Err(err),
            None => self
                .inner
                .score_as(tenant, model, task, schedules, deadline),
        }
    }

    fn breaker_snapshots(&self) -> Vec<crate::backend::EndpointBreaker> {
        self.inner.breaker_snapshots()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    /// A transport that always succeeds with an empty reply.
    struct AlwaysOk;
    impl ScoreTransport for AlwaysOk {
        fn score(
            &self,
            _model: &str,
            _task: &SearchTask,
            schedules: &[ScheduleSequence],
            _deadline: Option<Duration>,
        ) -> Result<ScoreReply, ServeError> {
            Ok(ScoreReply {
                scores: vec![None; schedules.len()],
                model_version: 1,
                stats: Default::default(),
                queue_us: 0,
                batch_jobs: 1,
            })
        }
    }

    fn probe(t: &FlakyTransport<AlwaysOk>) -> Result<ScoreReply, ServeError> {
        let task = SearchTask::new(
            tlp_workload::Subgraph::new("d", tlp_workload::AnchorOp::Dense { m: 8, n: 8, k: 8 }),
            tlp_hwsim::Platform::i7_10510u(),
        );
        t.score("m", &task, &[], None)
    }

    #[test]
    fn rate_zero_never_injects_rate_one_always_injects() {
        let t = FlakyTransport::new(AlwaysOk, 7, 0.0);
        for _ in 0..50 {
            assert!(probe(&t).is_ok());
        }
        assert_eq!(t.injected(), 0);
        t.set_fail_rate(1.0);
        for _ in 0..6 {
            let err = probe(&t).expect_err("always fails");
            assert!(crate::backend::is_transient(&err));
        }
        assert_eq!(t.injected(), 6);
        assert_eq!(t.calls(), 56);
    }

    #[test]
    fn failure_schedule_is_deterministic_in_seed() {
        let collect = |seed| {
            let t = FlakyTransport::new(AlwaysOk, seed, 0.3);
            (0..200).map(|_| probe(&t).is_err()).collect::<Vec<bool>>()
        };
        assert_eq!(collect(11), collect(11));
        assert_ne!(collect(11), collect(12));
    }
}
