//! The serving layer as an autotuner scoring backend.
//!
//! [`RemoteCostModel`] wraps a [`ScoreTransport`] (normally a
//! [`ServeClient`]) in the [`CostModel`] trait, so `tune_network` can score
//! through the shared server — coalescing its batches with other concurrent
//! tuners — instead of owning a private engine. The backend is built to
//! survive an unreliable server:
//!
//! - transient [`ServeError`]s ([`Overloaded`](ServeError::Overloaded),
//!   [`DeadlineExceeded`](ServeError::DeadlineExceeded),
//!   [`Disconnected`](ServeError::Disconnected)) are retried with jittered
//!   exponential backoff;
//! - a [`CircuitBreaker`] trips after consecutive failed requests, stops
//!   hammering the sick server, and probes it again after a cooldown
//!   (half-open) before closing;
//! - while the breaker is open, requests score through an optional local
//!   fallback model, or degrade to all-invalid batches the tuner's
//!   rank-last handling absorbs without aborting the search.

use crate::error::ServeError;
use crate::server::{ScoreReply, ServeClient};
use serde::Serialize;
use std::cell::{Cell, RefCell};
use std::time::Duration;
use tlp::search::TLP_PIPELINE_COST;
use tlp_autotuner::{CostModel, PipelineCost, ScoreBatch, ScoreRequest, SearchTask};
use tlp_schedule::ScheduleSequence;

/// The request channel a [`RemoteCostModel`] scores through. Implemented by
/// [`ServeClient`] for real serving and by
/// [`FlakyTransport`](crate::chaos::FlakyTransport) for chaos testing.
pub trait ScoreTransport {
    /// Scores `schedules` against the named model, honoring `deadline` when
    /// given.
    fn score(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError>;

    /// Like [`ScoreTransport::score`] but attributed to `tenant` for QoS
    /// accounting. Transports without tenancy ignore the label.
    fn score_as(
        &self,
        _tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        self.score(model, task, schedules, deadline)
    }

    /// Per-endpoint breaker state this transport maintains, one row per
    /// endpoint. Empty for single-endpoint transports (the default); a
    /// fleet router reports one row per shard so tests and operators can
    /// see *which* shard tripped.
    fn breaker_snapshots(&self) -> Vec<EndpointBreaker> {
        Vec::new()
    }
}

impl ScoreTransport for ServeClient {
    fn score(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        match deadline {
            None => ServeClient::score(self, model, task, schedules),
            Some(d) => ServeClient::score_with_deadline(self, model, task, schedules, d),
        }
    }

    fn score_as(
        &self,
        tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        ServeClient::score_as(self, tenant, model, task, schedules, deadline)
    }
}

/// Whether an error is worth retrying: the server may recover (queue drains,
/// a batcher catches up, a restart reconnects). Schedule and model errors
/// are deterministic and never retried.
pub(crate) fn is_transient(err: &ServeError) -> bool {
    matches!(
        err,
        ServeError::Overloaded { .. }
            | ServeError::TenantOverQuota { .. }
            | ServeError::NoHealthyShard { .. }
            | ServeError::DeadlineExceeded
            | ServeError::Disconnected
    )
}

/// Retry-with-backoff knobs for transient serving errors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failed request (`0` disables retry).
    pub max_retries: u32,
    /// Base backoff before retry 1; doubles each further retry.
    pub backoff_base: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic pseudo-random factor in `[1 - jitter, 1 + jitter]`,
    /// decorrelating retry storms across concurrent tuners.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(2),
            jitter: 0.5,
        }
    }
}

/// Circuit-breaker knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failed requests (after retries) that trip the breaker.
    pub failure_threshold: u32,
    /// Requests short-circuited while open before one probe is let through
    /// (the half-open transition). Counting calls instead of wall time keeps
    /// recovery deterministic under test.
    pub cooldown_calls: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_calls: 8,
        }
    }
}

/// Breaker state machine: `Closed` (healthy) → `Open` (failing fast) →
/// `HalfOpen` (probing) → `Closed` or back to `Open`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests fail fast to the fallback; the server is not called.
    Open,
    /// One probe request is in flight; its outcome decides the next state.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// A consecutive-failure circuit breaker with call-count cooldown.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    calls_while_open: u32,
    trips: u64,
    recoveries: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            calls_while_open: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decides whether the next request may go to the server. While open,
    /// counts short-circuited calls and lets one probe through (half-open)
    /// after the cooldown.
    pub fn allow_request(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.calls_while_open += 1;
                if self.calls_while_open >= self.config.cooldown_calls {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful request; a half-open probe success closes the
    /// breaker.
    pub fn on_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.recoveries += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.calls_while_open = 0;
    }

    /// Records a failed request (after retries); trips the breaker at the
    /// threshold, and a failed half-open probe re-opens it immediately.
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.calls_while_open = 0;
                self.trips += 1;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.calls_while_open = 0;
                    self.trips += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Force-opens the breaker immediately — the health-gossip path: a
    /// shard whose published error rate crosses the router's threshold is
    /// tripped without waiting for this client to observe
    /// `failure_threshold` consecutive failures itself. Starts a fresh
    /// cooldown; counted as a trip unless already open.
    pub fn trip(&mut self) {
        if self.state != BreakerState::Open {
            self.trips += 1;
        }
        self.state = BreakerState::Open;
        self.calls_while_open = 0;
        self.consecutive_failures = 0;
    }

    /// Point-in-time view for observability.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            trips: self.trips,
            recoveries: self.recoveries,
        }
    }
}

/// Serializable breaker state, reported in
/// [`ServeSnapshot`](crate::ServeSnapshot).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures observed while closed.
    pub consecutive_failures: u32,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Times a half-open probe succeeded and closed the breaker.
    pub recoveries: u64,
}

/// One endpoint's breaker state, labeled so multi-shard transports can
/// report which shard is in which state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct EndpointBreaker {
    /// Endpoint label (e.g. `shard-2`, or `client` for the
    /// [`RemoteCostModel`]'s own breaker).
    pub endpoint: String,
    /// That endpoint's breaker counters.
    pub breaker: BreakerSnapshot,
}

/// A [`CostModel`] scoring through a serving transport, with retry, circuit
/// breaking, and local fallback.
pub struct RemoteCostModel<T: ScoreTransport = ServeClient> {
    transport: T,
    model: String,
    label: String,
    deadline: Option<Duration>,
    retry: RetryPolicy,
    breaker: RefCell<CircuitBreaker>,
    fallback: Option<Box<dyn CostModel>>,
    errors: Cell<u64>,
    retries: Cell<u64>,
    fallback_scores: Cell<u64>,
    jitter_counter: Cell<u64>,
}

impl<T: ScoreTransport> RemoteCostModel<T> {
    /// A backend scoring against the model named `model` through
    /// `transport`, with default retry and breaker settings and no fallback.
    pub fn new(transport: T, model: impl Into<String>) -> Self {
        let model = model.into();
        RemoteCostModel {
            label: format!("serve:{model}"),
            transport,
            model,
            deadline: None,
            retry: RetryPolicy::default(),
            breaker: RefCell::new(CircuitBreaker::new(BreakerConfig::default())),
            fallback: None,
            errors: Cell::new(0),
            retries: Cell::new(0),
            fallback_scores: Cell::new(0),
            jitter_counter: Cell::new(0),
        }
    }

    /// Attaches a per-request deadline; requests exceeding it are treated as
    /// transient failures (retried, then degraded) instead of blocking the
    /// tuner.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the circuit-breaker thresholds.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = RefCell::new(CircuitBreaker::new(config));
        self
    }

    /// Installs a local model scored while the breaker is open (and when a
    /// request ultimately fails), instead of degrading to all-invalid
    /// batches.
    pub fn with_fallback(mut self, fallback: Box<dyn CostModel>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Number of requests that ultimately failed (retries exhausted or
    /// short-circuited by the open breaker) and were degraded to the
    /// fallback path.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Retry attempts performed beyond first tries.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Batches answered by the local fallback model.
    pub fn fallback_scores(&self) -> u64 {
        self.fallback_scores.get()
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.borrow().state()
    }

    /// Point-in-time breaker counters.
    pub fn breaker_snapshot(&self) -> BreakerSnapshot {
        self.breaker.borrow().snapshot()
    }

    /// Per-endpoint breaker rows: this client's own breaker under the label
    /// `client`, followed by any per-shard breakers the transport maintains
    /// (a fleet router reports one row per shard). Fleet tests use this to
    /// assert *which* shard tripped.
    pub fn endpoint_breakers(&self) -> Vec<EndpointBreaker> {
        let mut rows = vec![EndpointBreaker {
            endpoint: "client".to_string(),
            breaker: self.breaker.borrow().snapshot(),
        }];
        rows.extend(self.transport.breaker_snapshots());
        rows
    }

    /// The wrapped transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Deterministic jitter factor in `[1 - jitter, 1 + jitter]` from a
    /// splitmix-mixed call counter (no RNG stream, no wall clock).
    fn jitter_factor(&self) -> f64 {
        let n = self.jitter_counter.get();
        self.jitter_counter.set(n.wrapping_add(1));
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let u = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        1.0 + self.retry.jitter * (2.0 * u - 1.0)
    }

    /// One request with bounded retry on transient errors.
    fn score_with_retry(
        &self,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
    ) -> Result<ScoreReply, ServeError> {
        let mut attempt = 0u32;
        loop {
            match self
                .transport
                .score(&self.model, task, schedules, self.deadline)
            {
                Ok(reply) => return Ok(reply),
                Err(err) => {
                    if !is_transient(&err) || attempt >= self.retry.max_retries {
                        return Err(err);
                    }
                    let backoff = self
                        .retry
                        .backoff_base
                        .mul_f64(f64::from(1u32 << attempt.min(16)) * self.jitter_factor());
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    self.retries.set(self.retries.get() + 1);
                    attempt += 1;
                }
            }
        }
    }

    /// Scores through the fallback model (or degrades to an all-invalid
    /// batch without one).
    fn score_fallback(&self, request: ScoreRequest<'_>) -> ScoreBatch {
        self.fallback_scores.set(self.fallback_scores.get() + 1);
        match &self.fallback {
            Some(model) => model.predict(request),
            None => ScoreBatch::masked(vec![None; request.len()], TLP_PIPELINE_COST),
        }
    }
}

impl RemoteCostModel<ServeClient> {
    /// The server's stats snapshot with this client's circuit-breaker state
    /// filled in.
    pub fn stats(&self) -> crate::stats::ServeSnapshot {
        let mut snap = self.transport.stats();
        snap.breaker = Some(self.breaker.borrow().snapshot());
        snap
    }
}

impl<T: ScoreTransport> CostModel for RemoteCostModel<T> {
    fn predict(&self, request: ScoreRequest<'_>) -> ScoreBatch {
        if !self.breaker.borrow_mut().allow_request() {
            // Open breaker: fail fast to the fallback, don't touch the
            // server.
            return self.score_fallback(request);
        }
        match self.score_with_retry(request.task, request.candidates) {
            Ok(reply) => {
                self.breaker.borrow_mut().on_success();
                let mut batch = ScoreBatch::masked(reply.scores, TLP_PIPELINE_COST);
                batch.stats = reply.stats;
                batch
            }
            Err(err) => {
                debug_assert!(!matches!(err, ServeError::UnknownModel(_)));
                self.errors.set(self.errors.get() + 1);
                if is_transient(&err) {
                    self.breaker.borrow_mut().on_failure();
                }
                self.score_fallback(request)
            }
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn pipeline_cost(&self) -> PipelineCost {
        TLP_PIPELINE_COST
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..2 {
            assert!(b.allow_request());
            b.on_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.allow_request());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.snapshot().trips, 1);
        // Cooldown: first short-circuited call stays open, second probes.
        assert!(!b.allow_request());
        assert!(b.allow_request());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe fails → straight back to open, another full cooldown.
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.snapshot().trips, 2);
        assert!(!b.allow_request());
        assert!(b.allow_request());
        // Probe succeeds → closed, recovery counted.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.snapshot().recoveries, 1);
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&ServeError::Overloaded { capacity: 4 }));
        assert!(is_transient(&ServeError::DeadlineExceeded));
        assert!(is_transient(&ServeError::Disconnected));
        assert!(!is_transient(&ServeError::UnknownModel("x".into())));
        assert!(!is_transient(&ServeError::ShuttingDown));
    }
}
