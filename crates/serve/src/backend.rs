//! The serving layer as an autotuner scoring backend.
//!
//! [`RemoteCostModel`] wraps a [`ServeClient`] in the [`CostModel`] trait,
//! so `tune_network` can score through the shared server — coalescing its
//! batches with other concurrent tuners — instead of owning a private
//! engine. Serving failures degrade to an all-invalid batch rather than
//! panicking: the tuner's existing invalid-candidate handling (rank-last
//! fallback scores) absorbs a transient overload or deadline miss without
//! aborting the search.

use crate::error::ServeError;
use crate::server::ServeClient;
use std::time::Duration;
use tlp::search::TLP_PIPELINE_COST;
use tlp_autotuner::{CostModel, PipelineCost, ScoreBatch, ScoreRequest};

/// A [`CostModel`] scoring through a serving client.
pub struct RemoteCostModel {
    client: ServeClient,
    model: String,
    label: String,
    deadline: Option<Duration>,
    errors: std::cell::Cell<u64>,
}

impl RemoteCostModel {
    /// A backend scoring against the model named `model` on the server
    /// behind `client`.
    pub fn new(client: ServeClient, model: impl Into<String>) -> Self {
        let model = model.into();
        RemoteCostModel {
            label: format!("serve:{model}"),
            client,
            model,
            deadline: None,
            errors: std::cell::Cell::new(0),
        }
    }

    /// Attaches a per-request deadline; requests exceeding it come back as
    /// all-invalid batches instead of blocking the tuner.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Number of requests that failed with a [`ServeError`] and were
    /// degraded to all-invalid batches.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }
}

impl CostModel for RemoteCostModel {
    fn predict(&self, request: ScoreRequest<'_>) -> ScoreBatch {
        let result = match self.deadline {
            None => self
                .client
                .score(&self.model, request.task, request.candidates),
            Some(d) => {
                self.client
                    .score_with_deadline(&self.model, request.task, request.candidates, d)
            }
        };
        match result {
            Ok(reply) => {
                let mut batch = ScoreBatch::masked(reply.scores, TLP_PIPELINE_COST);
                batch.stats = reply.stats;
                batch
            }
            Err(err) => {
                debug_assert!(!matches!(err, ServeError::UnknownModel(_)));
                self.errors.set(self.errors.get() + 1);
                ScoreBatch::masked(vec![None; request.len()], TLP_PIPELINE_COST)
            }
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn pipeline_cost(&self) -> PipelineCost {
        TLP_PIPELINE_COST
    }
}
