//! Per-tenant QoS: weighted admission quotas and fair-share dispatch.
//!
//! A serving fleet is shared by many tuning clients ("tenants") of very
//! different appetites: an interactive auto-scheduler scoring 16 candidates
//! per round next to a bulk re-scoring job pushing thousands. Without
//! isolation, the greedy tenant fills the admission queue and the batcher
//! serves it back-to-back — everyone else starves. Two mechanisms bound
//! that:
//!
//! - **Weighted admission** ([`TenantTable::admit`]): each tenant owns a
//!   share of the admission queue proportional to its configured weight.
//!   A tenant at its share is rejected with
//!   [`ServeError::TenantOverQuota`](crate::ServeError::TenantOverQuota)
//!   *before* enqueueing, while tenants under their share keep being
//!   admitted — overload from one tenant can no longer crowd out another.
//! - **Fair-share dispatch** ([`TenantTable::pass_of`]): the batcher picks
//!   the queued job whose tenant has the lowest *virtual pass* (stride
//!   scheduling: a tenant's pass advances by `candidates / weight` for
//!   every candidate dispatched on its behalf). Heavy tenants advance
//!   their pass quickly and wait; light tenants stay cheap and get
//!   dispatched promptly. The schedule is a pure function of the queue
//!   contents, so serving stays deterministic.
//!
//! Tenancy is a scheduling label only: it never enters the score-cache key
//! or the routing key, so two tenants scoring the same `(model, task)`
//! share cache hits and batch coalescing — isolation bounds *service*, not
//! *scores* (which are bit-identical for everyone by construction).

use serde::Serialize;
use std::collections::BTreeMap;

/// The tenant used by submissions that don't name one.
pub const DEFAULT_TENANT: &str = "default";

/// Pass-arithmetic scale: passes advance by `candidates * STRIDE / weight`,
/// so weight ratios up to `STRIDE` are represented exactly.
const STRIDE: u64 = 1 << 20;

/// One tenant's QoS class: a name and a relative weight.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TenantSpec {
    /// Tenant name, as passed to `score_as`/`submit_as`.
    pub name: String,
    /// Relative weight (≥ 1): admission share and dispatch rate are
    /// proportional to `weight / Σ weights`.
    pub weight: u32,
}

impl TenantSpec {
    /// A tenant spec with the given name and weight (clamped to ≥ 1).
    pub fn new(name: impl Into<String>, weight: u32) -> Self {
        TenantSpec {
            name: name.into(),
            weight: weight.max(1),
        }
    }
}

/// Per-tenant QoS policy for a server.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TenantPolicy {
    /// Pre-registered tenants with explicit weights.
    pub classes: Vec<TenantSpec>,
    /// Weight assigned to tenants first seen at submission time.
    pub default_weight: u32,
    /// Enforce weighted admission quotas. Off, the table still tracks
    /// per-tenant stats and drives fair-share dispatch, but never rejects.
    pub enforce_quota: bool,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            classes: Vec::new(),
            default_weight: 1,
            enforce_quota: true,
        }
    }
}

impl TenantPolicy {
    /// A policy with the given classes, quota enforcement on.
    pub fn with_classes(classes: Vec<TenantSpec>) -> Self {
        TenantPolicy {
            classes,
            ..TenantPolicy::default()
        }
    }
}

/// One tenant's point-in-time accounting, reported in
/// [`ServeSnapshot`](crate::ServeSnapshot).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TenantStatsSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// Configured (or defaulted) weight.
    pub weight: u32,
    /// Jobs currently queued for this tenant.
    pub queued: usize,
    /// Jobs dispatched into engine batches so far.
    pub dispatched_jobs: u64,
    /// Candidates dispatched on this tenant's behalf so far.
    pub dispatched_candidates: u64,
    /// Submissions rejected because the tenant was at its admission share.
    pub rejected_quota: u64,
}

#[derive(Debug)]
struct TenantState {
    weight: u32,
    queued: usize,
    pass: u64,
    dispatched_jobs: u64,
    dispatched_candidates: u64,
    rejected_quota: u64,
}

/// Tenant accounting table, owned by the server's queue state (all access
/// is under the queue mutex, so plain fields suffice).
#[derive(Debug)]
pub struct TenantTable {
    tenants: BTreeMap<String, TenantState>,
    total_weight: u64,
    default_weight: u32,
    enforce: bool,
    /// Global virtual time: the pass of the most recently dispatched job.
    /// A tenant returning from idle restarts at `gvt`, so it cannot bank
    /// credit while away and then monopolize the batcher.
    gvt: u64,
}

impl TenantTable {
    /// A table with `policy`'s classes pre-registered.
    pub fn new(policy: &TenantPolicy) -> Self {
        let mut table = TenantTable {
            tenants: BTreeMap::new(),
            total_weight: 0,
            default_weight: policy.default_weight.max(1),
            enforce: policy.enforce_quota,
            gvt: 0,
        };
        for spec in &policy.classes {
            table.register(&spec.name, spec.weight.max(1));
        }
        table
    }

    fn register(&mut self, name: &str, weight: u32) {
        if !self.tenants.contains_key(name) {
            self.total_weight += u64::from(weight);
            self.tenants.insert(
                name.to_string(),
                TenantState {
                    weight,
                    queued: 0,
                    pass: self.gvt,
                    dispatched_jobs: 0,
                    dispatched_candidates: 0,
                    rejected_quota: 0,
                },
            );
        }
    }

    /// This tenant's admission share of a queue with `capacity` slots:
    /// `capacity * weight / Σ weights`, never below 1 so every tenant can
    /// always make progress.
    pub fn share(&self, tenant: &str, capacity: usize) -> usize {
        let (weight, total) = match self.tenants.get(tenant) {
            Some(t) => (u64::from(t.weight), self.total_weight),
            None => (
                u64::from(self.default_weight),
                self.total_weight + u64::from(self.default_weight),
            ),
        };
        if total == 0 {
            return capacity.max(1);
        }
        ((capacity as u64 * weight / total) as usize).max(1)
    }

    /// Admits one job for `tenant` (registering it at the default weight on
    /// first sight). Returns the tenant's share as the error payload when
    /// the tenant is already at it and quotas are enforced.
    ///
    /// # Errors
    ///
    /// Returns `Err(share)` when the tenant's queued jobs have reached its
    /// weighted share of `capacity`.
    pub fn admit(&mut self, tenant: &str, capacity: usize) -> Result<(), usize> {
        self.register(tenant, self.default_weight);
        let share = self.share(tenant, capacity);
        let gvt = self.gvt;
        let state = self
            .tenants
            .get_mut(tenant)
            .unwrap_or_else(|| unreachable!("tenant registered above"));
        if self.enforce && state.queued >= share {
            state.rejected_quota += 1;
            return Err(share);
        }
        if state.queued == 0 {
            // Returning from idle: no banked credit.
            state.pass = state.pass.max(gvt);
        }
        state.queued += 1;
        Ok(())
    }

    /// Un-admits one job for `tenant` without dispatching it (the submission
    /// failed after quota accounting, e.g. at the capacity check).
    pub fn cancel(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.queued = state.queued.saturating_sub(1);
        }
    }

    /// The tenant's current virtual pass; the batcher dispatches the queued
    /// job whose tenant's pass is lowest. Unknown tenants sort last.
    pub fn pass_of(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(u64::MAX, |t| t.pass)
    }

    /// Records the dispatch of one queued job carrying `candidates`
    /// candidates: decrements the tenant's queue count and advances its
    /// pass by `candidates * STRIDE / weight`.
    pub fn on_dispatch(&mut self, tenant: &str, candidates: usize) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.queued = state.queued.saturating_sub(1);
            self.gvt = self.gvt.max(state.pass);
            let cost = (candidates.max(1) as u64).saturating_mul(STRIDE) / u64::from(state.weight);
            state.pass = state.pass.saturating_add(cost);
            state.dispatched_jobs += 1;
            state.dispatched_candidates += candidates as u64;
        }
    }

    /// Point-in-time per-tenant rows, sorted by tenant name.
    pub fn snapshot(&self) -> Vec<TenantStatsSnapshot> {
        self.tenants
            .iter()
            .map(|(name, t)| TenantStatsSnapshot {
                tenant: name.clone(),
                weight: t.weight,
                queued: t.queued,
                dispatched_jobs: t.dispatched_jobs,
                dispatched_candidates: t.dispatched_candidates,
                rejected_quota: t.rejected_quota,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn policy(classes: &[(&str, u32)]) -> TenantPolicy {
        TenantPolicy::with_classes(
            classes
                .iter()
                .map(|&(n, w)| TenantSpec::new(n, w))
                .collect(),
        )
    }

    #[test]
    fn single_default_tenant_owns_the_whole_queue() {
        let mut t = TenantTable::new(&TenantPolicy::default());
        for _ in 0..100 {
            t.admit(DEFAULT_TENANT, 100).expect("whole queue available");
        }
        assert_eq!(t.admit(DEFAULT_TENANT, 100), Err(100));
    }

    #[test]
    fn weighted_shares_bound_each_tenant() {
        let mut t = TenantTable::new(&policy(&[("heavy", 3), ("light", 1)]));
        assert_eq!(t.share("heavy", 100), 75);
        assert_eq!(t.share("light", 100), 25);
        for _ in 0..75 {
            t.admit("heavy", 100).expect("within share");
        }
        assert_eq!(t.admit("heavy", 100), Err(75));
        // The other tenant's share is untouched by heavy's overload.
        for _ in 0..25 {
            t.admit("light", 100).expect("own share");
        }
        let snap = t.snapshot();
        assert_eq!(snap[0].tenant, "heavy");
        assert_eq!(snap[0].rejected_quota, 1);
    }

    #[test]
    fn unknown_tenant_auto_registers_with_default_weight() {
        let mut t = TenantTable::new(&policy(&[("a", 1)]));
        t.admit("newcomer", 10).expect("auto-registered");
        assert_eq!(t.snapshot().len(), 2);
        assert_eq!(t.pass_of("newcomer"), 0);
        assert_eq!(t.pass_of("missing"), u64::MAX);
    }

    #[test]
    fn stride_passes_favor_light_tenants() {
        let mut t = TenantTable::new(&policy(&[("greedy", 1), ("light", 1)]));
        t.admit("greedy", 100).expect("admit");
        t.admit("light", 100).expect("admit");
        // Greedy dispatches 512 candidates; light dispatches 16.
        t.on_dispatch("greedy", 512);
        t.on_dispatch("light", 16);
        assert!(
            t.pass_of("light") < t.pass_of("greedy"),
            "light tenant must be scheduled next"
        );
    }

    #[test]
    fn idle_tenant_cannot_bank_credit() {
        let mut t = TenantTable::new(&policy(&[("busy", 1), ("idle", 1)]));
        t.admit("busy", 100).expect("admit");
        t.on_dispatch("busy", 1000);
        // "idle" was registered at pass 0 but never queued; when it shows
        // up, it restarts at the global virtual time, not at 0.
        t.admit("idle", 100).expect("admit");
        assert!(t.pass_of("idle") >= t.pass_of("busy").saturating_sub(STRIDE * 1000));
    }

    #[test]
    fn quota_enforcement_can_be_disabled() {
        let mut t = TenantTable::new(&TenantPolicy {
            enforce_quota: false,
            ..TenantPolicy::default()
        });
        for _ in 0..50 {
            t.admit("x", 4).expect("quota off");
        }
        assert_eq!(t.snapshot()[0].queued, 50);
    }
}
