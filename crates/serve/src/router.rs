//! The fleet router: consistent hashing, per-shard breakers, failover.
//!
//! A [`FleetClient`] fronts N server shards. Each request's routing key is
//! a hash of `(model, task fingerprint)` — **never** the tenant — so all
//! tenants scoring the same task land on the same shard and share its hot
//! score cache, while distinct tasks spread across the fleet. The key walks
//! a consistent-hash ring ([`HashRing`]) of virtual nodes: the first shard
//! clockwise owns the key, and the distinct shards after it form the
//! failover order, so adding or faulting one shard only remaps the keys it
//! owned.
//!
//! Failure handling is layered:
//!
//! - each shard sits behind a [`FlakyTransport`] (rate 0 by default — inert
//!   and bit-identical to a bare client) so chaos tests can fault one shard
//!   deterministically;
//! - each shard has a router-side [`CircuitBreaker`]: transient failures
//!   count toward tripping it, an open breaker skips the shard (failover to
//!   the next in key order), and the call-count cooldown lets a half-open
//!   probe through later — succeeding probes *fail back* to the owner;
//! - every outcome feeds the [`HealthBoard`]; a published snapshot marking
//!   a shard sick trips that shard's breaker immediately (gossip-driven
//!   trip), so the fleet reacts to an error *rate*, not only to consecutive
//!   failures.
//!
//! Deterministic rejections (invalid schedule, unknown model, tenant over
//! quota) are returned to the caller without failover: retrying them on
//! another shard cannot succeed — and for quota rejections would let a
//! greedy tenant escape its share by spilling across the fleet.

use crate::backend::{
    is_transient, BreakerConfig, BreakerState, CircuitBreaker, EndpointBreaker, ScoreTransport,
};
use crate::chaos::{mix, FlakyTransport};
use crate::error::ServeError;
use crate::health::{HealthBoard, HealthPolicy, ShardHealth};
use crate::server::{ScoreReply, ServeClient};
use crate::tenant::DEFAULT_TENANT;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tlp::engine::task_fingerprint;
use tlp_autotuner::SearchTask;
use tlp_schedule::ScheduleSequence;

/// Virtual nodes per shard: enough that key ownership is near-uniform for
/// small fleets while the ring stays tiny (8 shards → 512 points).
const VNODES: u64 = 64;

/// Salt decorrelating ring-point hashes from other splitmix users.
const RING_SALT: u64 = 0x72f3_9a1c_5bd6_e04d;

/// The routing key for `(model, task fingerprint)`. Tenant-independent by
/// construction: tenancy is a QoS label, and keying on it would shatter the
/// per-shard score caches and let tenant identity move scores across
/// shards.
pub fn route_key(model: &str, task_fp: u64) -> u64 {
    // FNV-1a over the model name, then splitmix-fold the fingerprint.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in model.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix(h ^ task_fp)
}

/// A consistent-hash ring of `VNODES` points per shard.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// (point, shard), sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards.
    pub fn new(shards: usize) -> Self {
        let mut points: Vec<(u64, usize)> = (0..shards)
            .flat_map(|s| (0..VNODES).map(move |v| (mix(RING_SALT ^ ((s as u64) << 32) ^ v), s)))
            .collect();
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (the first ring point clockwise).
    pub fn owner(&self, key: u64) -> usize {
        self.order(key)[0]
    }

    /// Preference order for `key`: the owner first, then each distinct
    /// shard in clockwise ring order — the failover sequence.
    ///
    /// # Panics
    ///
    /// Panics if the ring has zero shards.
    pub fn order(&self, key: u64) -> Vec<usize> {
        assert!(self.shards > 0, "ring must have at least one shard");
        let len = self.points.len();
        let start = self.points.partition_point(|&(p, _)| p < key) % len;
        let mut seen = vec![false; self.shards];
        let mut out = Vec::with_capacity(self.shards);
        for i in 0..len {
            let (_, shard) = self.points[(start + i) % len];
            if !seen[shard] {
                seen[shard] = true;
                out.push(shard);
                if out.len() == self.shards {
                    break;
                }
            }
        }
        out
    }
}

/// One shard as the router sees it: a chaos-wrappable transport plus a
/// router-side breaker.
struct ShardEndpoint {
    name: String,
    transport: FlakyTransport<ServeClient>,
    breaker: Mutex<CircuitBreaker>,
}

impl ShardEndpoint {
    fn lock_breaker(&self) -> std::sync::MutexGuard<'_, CircuitBreaker> {
        self.breaker.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Router-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RouterStats {
    /// Requests routed (each counted once, however many shards it tried).
    pub routed: u64,
    /// Failover hops: shards skipped (open breaker) or failed transiently
    /// before a request succeeded or gave up.
    pub failovers: u64,
    /// Breaker trips driven by a sick published health snapshot (as opposed
    /// to the breaker's own consecutive-failure count).
    pub gossip_trips: u64,
}

struct RouterShared {
    ring: HashRing,
    shards: Vec<ShardEndpoint>,
    health: Mutex<HealthBoard>,
    routed: AtomicU64,
    failovers: AtomicU64,
    gossip_trips: AtomicU64,
}

/// A successful fleet request, annotated with where it was served.
#[derive(Clone, Debug)]
pub struct FleetReply {
    /// Shard that produced the reply.
    pub shard: usize,
    /// Shards skipped or failed before this one answered (0 = served by the
    /// key's owner).
    pub failovers: u32,
    /// The shard's reply.
    pub reply: ScoreReply,
}

/// A cheap, cloneable handle routing score requests across a shard fleet.
#[derive(Clone)]
pub struct FleetClient {
    shared: Arc<RouterShared>,
}

impl FleetClient {
    /// A router over `clients` (one per shard), with per-shard breakers
    /// configured by `breaker` and health gossip by `health`. Each shard's
    /// chaos wrapper draws from `chaos_seed` plus the shard index and
    /// starts at rate 0 (inert).
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn new(
        clients: Vec<ServeClient>,
        chaos_seed: u64,
        breaker: BreakerConfig,
        health: HealthPolicy,
    ) -> Self {
        assert!(!clients.is_empty(), "fleet needs at least one shard");
        let n = clients.len();
        let shards = clients
            .into_iter()
            .enumerate()
            .map(|(i, client)| ShardEndpoint {
                name: format!("shard-{i}"),
                transport: FlakyTransport::new(client, mix(chaos_seed ^ (i as u64)), 0.0),
                breaker: Mutex::new(CircuitBreaker::new(breaker)),
            })
            .collect();
        FleetClient {
            shared: Arc::new(RouterShared {
                ring: HashRing::new(n),
                shards,
                health: Mutex::new(HealthBoard::new(n, health)),
                routed: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                gossip_trips: AtomicU64::new(0),
            }),
        }
    }

    /// Number of shards behind this router.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The shard owning `(model, task)`'s routing key.
    pub fn owner_of(&self, model: &str, task: &SearchTask) -> usize {
        self.shared
            .ring
            .owner(route_key(model, task_fingerprint(task)))
    }

    /// Failover preference order for `(model, task)`.
    pub fn route_order(&self, model: &str, task: &SearchTask) -> Vec<usize> {
        self.shared
            .ring
            .order(route_key(model, task_fingerprint(task)))
    }

    /// Sets the chaos fault rate on one shard's transport (0 = inert).
    pub fn fault(&self, shard: usize, rate: f64) {
        self.shared.shards[shard].transport.set_fail_rate(rate);
    }

    /// Failures injected into `shard` by its chaos wrapper so far.
    pub fn injected(&self, shard: usize) -> u64 {
        self.shared.shards[shard].transport.injected()
    }

    /// The router-side breaker snapshot for `shard`.
    pub fn breaker(&self, shard: usize) -> crate::backend::BreakerSnapshot {
        self.shared.shards[shard].lock_breaker().snapshot()
    }

    /// Force-opens `shard`'s breaker (operator-driven drain).
    pub fn trip_shard(&self, shard: usize) {
        self.shared.shards[shard].lock_breaker().trip();
    }

    /// The latest published health snapshot per shard.
    pub fn health(&self) -> Vec<Option<ShardHealth>> {
        self.lock_health().snapshot()
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.shared.routed.load(Ordering::Relaxed),
            failovers: self.shared.failovers.load(Ordering::Relaxed),
            gossip_trips: self.shared.gossip_trips.load(Ordering::Relaxed),
        }
    }

    /// The per-shard server client (for installs and server-side stats).
    pub fn shard_client(&self, shard: usize) -> &ServeClient {
        self.shared.shards[shard].transport.inner()
    }

    fn lock_health(&self) -> std::sync::MutexGuard<'_, HealthBoard> {
        self.shared.health.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Feeds one outcome into the health board; a published sick snapshot
    /// trips the shard's breaker (the gossip → breaker edge).
    fn record_outcome(&self, shard: usize, ok: bool) {
        let ep = &self.shared.shards[shard];
        let breaker_state = ep.lock_breaker().state();
        let published = {
            let mut board = self.lock_health();
            let depth = if board.due(shard) {
                ep.transport.inner().stats().queue_depth
            } else {
                0
            };
            board.record(shard, ok, depth, breaker_state)
        };
        if published.is_some_and(|h| h.sick) {
            let mut breaker = ep.lock_breaker();
            if breaker.state() != BreakerState::Open {
                breaker.trip();
                self.shared.gossip_trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Routes one request: tries each shard in key order, skipping open
    /// breakers and failing over on transient errors.
    ///
    /// # Errors
    ///
    /// Deterministic rejections propagate from the first shard that saw
    /// them; [`ServeError::NoHealthyShard`] when every shard was skipped or
    /// failed transiently.
    pub fn score_detailed(
        &self,
        tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<FleetReply, ServeError> {
        let order = self
            .shared
            .ring
            .order(route_key(model, task_fingerprint(task)));
        self.shared.routed.fetch_add(1, Ordering::Relaxed);
        let mut attempted = 0usize;
        let mut failovers = 0u32;
        for &shard in &order {
            let ep = &self.shared.shards[shard];
            attempted += 1;
            if !ep.lock_breaker().allow_request() {
                failovers += 1;
                self.shared.failovers.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match ep
                .transport
                .score_as(tenant, model, task, schedules, deadline)
            {
                Ok(reply) => {
                    ep.lock_breaker().on_success();
                    self.record_outcome(shard, true);
                    return Ok(FleetReply {
                        shard,
                        failovers,
                        reply,
                    });
                }
                Err(err)
                    if is_transient(&err) && !matches!(err, ServeError::TenantOverQuota { .. }) =>
                {
                    // Infrastructure failure: count it against the shard and
                    // fail over to the next in key order.
                    ep.lock_breaker().on_failure();
                    self.record_outcome(shard, false);
                    failovers += 1;
                    self.shared.failovers.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) => return Err(err),
            }
        }
        Err(ServeError::NoHealthyShard { attempted })
    }
}

impl ScoreTransport for FleetClient {
    fn score(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        self.score_detailed(DEFAULT_TENANT, model, task, schedules, deadline)
            .map(|r| r.reply)
    }

    fn score_as(
        &self,
        tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        self.score_detailed(tenant, model, task, schedules, deadline)
            .map(|r| r.reply)
    }

    fn breaker_snapshots(&self) -> Vec<EndpointBreaker> {
        self.shared
            .shards
            .iter()
            .map(|ep| EndpointBreaker {
                endpoint: ep.name.clone(),
                breaker: ep.lock_breaker().snapshot(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn ring_order_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(5);
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let order = ring.order(key);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "order is a permutation");
            assert_eq!(order, ring.order(key), "stable across calls");
            assert_eq!(order[0], ring.owner(key));
        }
    }

    #[test]
    fn ring_ownership_is_roughly_uniform() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000u64 {
            counts[ring.owner(mix(i))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1600).contains(&c),
                "shard {shard} owns {c} of 4000 keys — far from uniform"
            );
        }
    }

    #[test]
    fn route_key_ignores_everything_but_model_and_fp() {
        assert_eq!(route_key("m", 42), route_key("m", 42));
        assert_ne!(route_key("m", 42), route_key("m", 43));
        assert_ne!(route_key("m", 42), route_key("n", 42));
    }
}
