//! Named, versioned cost models, hot-swappable under live traffic.
//!
//! The registry maps model names to [`ModelVersion`]s — an immutable bundle
//! of (restored scorer, private [`InferenceEngine`], monotonic version tag)
//! behind an `Arc`. Lookups clone the `Arc`, so a batch that resolved a
//! model keeps scoring on exactly that version even if an
//! [`ModelRegistry::install`] swaps the name mid-flight; the old version is
//! freed when its last in-flight batch drops it. Each version owns its own
//! engine (and score cache), so a swap can never serve version-N scores to
//! version-N+1 requests; the displaced engine is additionally
//! [`InferenceEngine::invalidate`]d at swap time so its cache memory is
//! released immediately rather than when the last straggler finishes.

use crate::error::ServeError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use tlp::engine::{EngineConfig, InferenceEngine, ScheduleScorer};
use tlp::persist::{PersistError, SavedTlp};
use tlp::search::{FeatureScratch, MtlTlpScorer, TlpScorer, TLP_PIPELINE_COST};
use tlp::FeatureExtractor;
use tlp::{MtlTlp, TlpModel};
use tlp_autotuner::{BatchStats, PipelineCost, SearchTask};
use tlp_modelcheck::{audit_store, AuditReport};
use tlp_schedule::ScheduleSequence;

/// A scorer restored from a [`SavedTlp`] snapshot: single-task TLP or the
/// target head of an MTL model.
#[derive(Debug)]
pub enum LoadedScorer {
    /// Single-task TLP.
    Tlp(TlpScorer),
    /// MTL-TLP scored through head 0 (the target platform).
    Mtl(MtlTlpScorer),
}

impl ScheduleScorer for LoadedScorer {
    type Scratch = FeatureScratch;

    fn name(&self) -> &str {
        match self {
            LoadedScorer::Tlp(s) => s.name(),
            LoadedScorer::Mtl(s) => s.name(),
        }
    }

    fn pipeline_cost(&self) -> PipelineCost {
        TLP_PIPELINE_COST
    }

    fn score_micro_batch_into(
        &self,
        scratch: &mut FeatureScratch,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        idx: &[usize],
        out: &mut Vec<Option<f32>>,
    ) {
        match self {
            LoadedScorer::Tlp(s) => s.score_micro_batch_into(scratch, task, schedules, idx, out),
            LoadedScorer::Mtl(s) => s.score_micro_batch_into(scratch, task, schedules, idx, out),
        }
    }
}

/// One immutable installed model: scorer + private engine + version tag.
#[derive(Debug)]
pub struct ModelVersion {
    name: String,
    version: u64,
    scorer: LoadedScorer,
    engine: InferenceEngine,
}

impl ModelVersion {
    /// Registry name this version is (or was) installed under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic version tag, unique across the registry's lifetime.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// This version's engine (for stats snapshots).
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Scores `schedules` for `task` through this version's engine
    /// (batched, cached, parallel — identical semantics to direct
    /// [`InferenceEngine::score`] calls).
    pub fn score(
        &self,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
    ) -> (Vec<Option<f32>>, BatchStats) {
        self.engine.score(&self.scorer, task, schedules)
    }

    /// Like [`ModelVersion::score`] but writing into a caller-owned buffer,
    /// so the serving batcher can reuse one output vector across batches.
    pub fn score_into(
        &self,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        out: &mut Vec<Option<f32>>,
    ) -> BatchStats {
        self.engine.score_into(&self.scorer, task, schedules, out)
    }
}

/// Thread-safe name → current-[`ModelVersion`] map.
///
/// Installs are **audited** by default: every model entering the registry —
/// from a snapshot or in-memory — is run through the `tlp-modelcheck`
/// static analyzer first, and a model with error-severity diagnostics is
/// rejected with [`PersistError::Invalid`] instead of ever becoming
/// resolvable. The registry counts rejections
/// ([`ModelRegistry::rejected_installs`]) for the serving stats snapshot.
/// [`ModelRegistry::set_audit_installs`] is the escape hatch
/// (`ServeConfig::validate_install` wires it at server start).
#[derive(Debug)]
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ModelVersion>>>,
    next_version: AtomicU64,
    engine_config: EngineConfig,
    audit_installs: AtomicBool,
    rejected_installs: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new(EngineConfig::default())
    }
}

impl ModelRegistry {
    /// An empty registry; every installed version gets an engine sized by
    /// `engine_config`. Install auditing starts enabled.
    pub fn new(engine_config: EngineConfig) -> Self {
        ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            next_version: AtomicU64::new(1),
            engine_config,
            audit_installs: AtomicBool::new(true),
            rejected_installs: AtomicU64::new(0),
        }
    }

    /// Enables or disables the `tlp-modelcheck` install gate.
    pub fn set_audit_installs(&self, on: bool) {
        self.audit_installs.store(on, Ordering::Relaxed);
    }

    /// Whether installs are currently audited.
    pub fn audit_installs(&self) -> bool {
        self.audit_installs.load(Ordering::Relaxed)
    }

    /// How many installs the audit gate has rejected over the registry's
    /// lifetime.
    pub fn rejected_installs(&self) -> u64 {
        self.rejected_installs.load(Ordering::Relaxed)
    }

    /// Rejects with [`PersistError::Invalid`] (and counts the rejection)
    /// if `report` carries error-severity diagnostics.
    fn gate(&self, report: AuditReport) -> Result<(), PersistError> {
        if report.has_errors() {
            self.rejected_installs.fetch_add(1, Ordering::Relaxed);
            return Err(PersistError::Invalid {
                diagnostics: report.errors().cloned().collect(),
            });
        }
        Ok(())
    }

    /// Installs (or hot-swaps) a model restored from a snapshot. Single-task
    /// snapshots load as TLP, multi-head snapshots as MTL-TLP (target head).
    /// When auditing is enabled the snapshot's full audit (structure,
    /// numerics, checksum) must pass first.
    ///
    /// Returns the new version tag.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Invalid`] when the audit gate rejects the
    /// snapshot; propagates other [`PersistError`]s from the restore
    /// (zero-head snapshots).
    pub fn install(&self, name: &str, snapshot: &SavedTlp) -> Result<u64, PersistError> {
        if self.audit_installs() {
            self.gate(snapshot.audit())?;
        }
        // The gate above already ran the full audit (or the operator turned
        // it off); either way the restore itself need not re-audit.
        let scorer = if snapshot.heads() == 1 {
            let (model, extractor) = snapshot.restore_tlp_unchecked()?;
            LoadedScorer::Tlp(TlpScorer { model, extractor })
        } else {
            let (model, extractor) = snapshot.restore_mtl_unchecked()?;
            LoadedScorer::Mtl(MtlTlpScorer::new(model, extractor))
        };
        Ok(self.install_scorer(name, scorer))
    }

    /// Installs (or hot-swaps) an in-memory single-task model, auditing its
    /// store against the layout its config declares when the gate is on.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Invalid`] when the audit gate rejects the
    /// model.
    pub fn install_tlp(
        &self,
        name: &str,
        model: TlpModel,
        extractor: FeatureExtractor,
    ) -> Result<u64, PersistError> {
        if self.audit_installs() {
            let spec = tlp::audit::tlp_spec(&model.config);
            self.gate(audit_store(&spec, &model.store))?;
        }
        Ok(self.install_scorer(name, LoadedScorer::Tlp(TlpScorer { model, extractor })))
    }

    /// Installs (or hot-swaps) an in-memory MTL model (scored via head 0),
    /// auditing its store when the gate is on.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Invalid`] when the audit gate rejects the
    /// model.
    pub fn install_mtl(
        &self,
        name: &str,
        model: MtlTlp,
        extractor: FeatureExtractor,
    ) -> Result<u64, PersistError> {
        if self.audit_installs() {
            let spec = tlp::audit::mtl_spec(&model.config, model.num_tasks());
            self.gate(audit_store(&spec, &model.store))?;
        }
        Ok(self.install_scorer(name, LoadedScorer::Mtl(MtlTlpScorer::new(model, extractor))))
    }

    /// Installs (or hot-swaps) an in-memory MTL model scored through head
    /// `head` (continual adaptation serves a newly grown platform head this
    /// way without disturbing the other heads), auditing its store when the
    /// gate is on.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Invalid`] when the audit gate rejects the
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range for the model.
    pub fn install_mtl_head(
        &self,
        name: &str,
        model: MtlTlp,
        extractor: FeatureExtractor,
        head: usize,
    ) -> Result<u64, PersistError> {
        assert!(head < model.num_tasks(), "serving head out of range");
        if self.audit_installs() {
            let spec = tlp::audit::mtl_spec(&model.config, model.num_tasks());
            self.gate(audit_store(&spec, &model.store))?;
        }
        Ok(self.install_scorer(
            name,
            LoadedScorer::Mtl(MtlTlpScorer::for_head(model, extractor, head)),
        ))
    }

    /// Installs a scorer under `name`, atomically replacing any previous
    /// version. In-flight batches holding the old `Arc` finish on the old
    /// version; its cache is invalidated immediately so the displaced
    /// entries stop occupying memory.
    pub fn install_scorer(&self, name: &str, scorer: LoadedScorer) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(ModelVersion {
            name: name.to_string(),
            version,
            scorer,
            engine: InferenceEngine::new(self.engine_config),
        });
        let old = self
            .models
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), entry);
        if let Some(old) = old {
            old.engine.invalidate();
        }
        version
    }

    /// The current version under `name`, if any.
    pub fn resolve(&self, name: &str) -> Option<Arc<ModelVersion>> {
        self.models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Like [`ModelRegistry::resolve`] but with the serving-layer error.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when `name` is not installed.
    pub fn resolve_required(&self, name: &str) -> Result<Arc<ModelVersion>, ServeError> {
        self.resolve(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Uninstalls `name`. In-flight batches on the removed version finish
    /// normally.
    pub fn remove(&self, name: &str) -> bool {
        self.models
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some()
    }

    /// Installed model names, sorted (the map iterates in key order).
    pub fn names(&self) -> Vec<String> {
        self.models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Current (name, version, engine-stats) rows for stats snapshots,
    /// sorted by name (the map iterates in key order).
    pub fn stats(&self) -> Vec<crate::stats::ModelStatsSnapshot> {
        self.models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|m| crate::stats::ModelStatsSnapshot {
                name: m.name.clone(),
                version: m.version,
                engine: m.engine.stats(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use tlp::persist::snapshot_tlp;
    use tlp::TlpConfig;
    use tlp_schedule::Vocabulary;

    fn model_and_extractor() -> (TlpModel, FeatureExtractor) {
        let cfg = TlpConfig::test_scale();
        let ex =
            FeatureExtractor::with_vocab(Vocabulary::builder().build(), cfg.seq_len, cfg.emb_size);
        (TlpModel::new(cfg), ex)
    }

    #[test]
    fn install_resolve_remove_roundtrip() {
        let reg = ModelRegistry::default();
        assert!(reg.resolve("m").is_none());
        assert_eq!(
            reg.resolve_required("m").err(),
            Some(ServeError::UnknownModel("m".to_string())),
        );
        let (model, ex) = model_and_extractor();
        let v1 = reg.install_tlp("m", model, ex).expect("valid model");
        let resolved = reg.resolve("m").expect("installed");
        assert_eq!(resolved.version(), v1);
        assert_eq!(resolved.name(), "m");
        assert_eq!(reg.names(), vec!["m".to_string()]);
        assert!(reg.remove("m"));
        assert!(!reg.remove("m"));
        assert!(reg.resolve("m").is_none());
    }

    #[test]
    fn hot_swap_bumps_version_and_keeps_old_arc_alive() {
        let reg = ModelRegistry::default();
        let (m1, e1) = model_and_extractor();
        let (m2, e2) = model_and_extractor();
        let v1 = reg.install_tlp("m", m1, e1).expect("valid model");
        let held = reg.resolve("m").expect("v1");
        let v2 = reg.install_tlp("m", m2, e2).expect("valid model");
        assert!(v2 > v1);
        // The held Arc still answers as the old version.
        assert_eq!(held.version(), v1);
        assert_eq!(reg.resolve("m").expect("v2").version(), v2);
        // Swap invalidated the displaced engine.
        assert_eq!(held.engine().stats().invalidations, 1);
    }

    #[test]
    fn snapshot_install_picks_model_family() {
        let reg = ModelRegistry::default();
        let (model, ex) = model_and_extractor();
        let snap = snapshot_tlp(&model, &ex);
        let v = reg.install("from-disk", &snap).expect("install");
        let resolved = reg.resolve("from-disk").expect("installed");
        assert_eq!(resolved.version(), v);
        let rows = reg.stats();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "from-disk");
    }

    #[test]
    fn audit_gate_rejects_nan_model_and_counts_it() {
        let reg = ModelRegistry::default();
        assert!(reg.audit_installs(), "gate must default on");
        let (mut model, ex) = model_and_extractor();
        let id = model.store.ids().next().expect("store has params");
        model.store.value_mut(id).data_mut()[0] = f32::NAN;

        match reg.install_tlp("bad", model, ex) {
            Err(PersistError::Invalid { diagnostics }) => {
                assert!(!diagnostics.is_empty());
            }
            other => panic!("expected Invalid, got {other:?}", other = other.err()),
        }
        assert_eq!(reg.rejected_installs(), 1);
        assert!(
            reg.resolve("bad").is_none(),
            "rejected model must not serve"
        );
    }

    #[test]
    fn audit_gate_can_be_disabled() {
        let reg = ModelRegistry::default();
        reg.set_audit_installs(false);
        let (mut model, ex) = model_and_extractor();
        let id = model.store.ids().next().expect("store has params");
        model.store.value_mut(id).data_mut()[0] = f32::NAN;
        // With the gate off the broken model installs — the operator owns
        // the consequences.
        reg.install_tlp("bad", model, ex).expect("gate disabled");
        assert_eq!(reg.rejected_installs(), 0);
        assert!(reg.resolve("bad").is_some());
    }

    #[test]
    fn snapshot_install_rejects_corrupt_snapshot() {
        let reg = ModelRegistry::default();
        let (model, ex) = model_and_extractor();
        let mut snap = snapshot_tlp(&model, &ex);
        let id = snap.store().ids().next().expect("store has params");
        let bits = snap.store().value(id).data()[0].to_bits() ^ 1;
        snap.store_mut().value_mut(id).data_mut()[0] = f32::from_bits(bits);
        assert!(matches!(
            reg.install("bad", &snap),
            Err(PersistError::Invalid { .. })
        ));
        assert_eq!(reg.rejected_installs(), 1);
    }
}
