//! Typed serving failures.
//!
//! Every way a score request can fail without a score is a variant here, so
//! clients can program against overload and deadline expiry instead of
//! parsing strings or blocking forever.

use std::fmt;
use tlp_verify::Diagnostic;

/// Why a serving request did not produce scores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A submitted schedule failed static verification at admission
    /// ([`tlp_verify::verify`]). Carries the diagnostics so clients can
    /// see *why* without re-running the analyzer; the request was never
    /// enqueued, so invalid load costs O(verify) and no batcher time.
    InvalidSchedule {
        /// Index of the first offending schedule in the submitted batch.
        index: usize,
        /// The verifier's findings for that schedule (errors and below).
        diagnostics: Vec<Diagnostic>,
    },
    /// The admission queue was at capacity; the request was rejected
    /// immediately (never enqueued) so server memory stays bounded under
    /// overload. Back off and retry.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The submitting tenant is already using its weighted share of the
    /// admission queue ([`TenantTable`](crate::tenant::TenantTable)); the
    /// request was rejected before enqueueing so one greedy tenant cannot
    /// crowd out the others. Back off and retry — other tenants' shares are
    /// unaffected.
    TenantOverQuota {
        /// The tenant that exceeded its share.
        tenant: String,
        /// The tenant's admission share (queue slots) that was exhausted.
        share: usize,
    },
    /// Every shard in the routing order was either circuit-broken or failed
    /// transiently; the fleet router gave up on this request. Transient: a
    /// shard may recover (breaker half-open probe, fault clears).
    NoHealthyShard {
        /// Shards the router attempted (or skipped open-breakered).
        attempted: usize,
    },
    /// The request's deadline expired before scoring completed — either in
    /// the queue (the server dropped it unscored) or while the client waited
    /// for the reply.
    DeadlineExceeded,
    /// No model with this name is installed in the registry.
    UnknownModel(String),
    /// The server is shutting down and no longer admits new work.
    ShuttingDown,
    /// The server dropped the reply channel without answering (it was torn
    /// down non-gracefully). Treated as a request failure, never a hang.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidSchedule { index, diagnostics } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == tlp_verify::Severity::Error)
                    .count();
                write!(
                    f,
                    "schedule {index} failed static verification ({errors} error(s)); \
                     rejected at admission"
                )
            }
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "serving queue full (capacity {capacity}); request rejected"
                )
            }
            ServeError::TenantOverQuota { tenant, share } => {
                write!(
                    f,
                    "tenant `{tenant}` is at its admission share ({share} queued jobs); \
                     request rejected"
                )
            }
            ServeError::NoHealthyShard { attempted } => {
                write!(
                    f,
                    "no healthy shard answered (attempted {attempted}); fleet request failed"
                )
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline expired before scoring"),
            ServeError::UnknownModel(name) => write!(f, "no model named `{name}` is installed"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "server dropped the request without a reply"),
        }
    }
}

impl std::error::Error for ServeError {}
