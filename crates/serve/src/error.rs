//! Typed serving failures.
//!
//! Every way a score request can fail without a score is a variant here, so
//! clients can program against overload and deadline expiry instead of
//! parsing strings or blocking forever.

use std::fmt;

/// Why a serving request did not produce scores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was at capacity; the request was rejected
    /// immediately (never enqueued) so server memory stays bounded under
    /// overload. Back off and retry.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline expired before scoring completed — either in
    /// the queue (the server dropped it unscored) or while the client waited
    /// for the reply.
    DeadlineExceeded,
    /// No model with this name is installed in the registry.
    UnknownModel(String),
    /// The server is shutting down and no longer admits new work.
    ShuttingDown,
    /// The server dropped the reply channel without answering (it was torn
    /// down non-gracefully). Treated as a request failure, never a hang.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "serving queue full (capacity {capacity}); request rejected"
                )
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline expired before scoring"),
            ServeError::UnknownModel(name) => write!(f, "no model named `{name}` is installed"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "server dropped the request without a reply"),
        }
    }
}

impl std::error::Error for ServeError {}
