//! Serving-side observability: lock-free latency histograms and counter
//! snapshots.
//!
//! The hot path records one histogram sample and a handful of relaxed
//! atomic increments per request; quantiles are computed only when a
//! snapshot is taken. Snapshots are plain serde data so they can be dumped
//! as JSON next to `BENCH_serving.json` or polled by an operator.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use tlp::EngineStats;

/// Number of power-of-two buckets; covers 1 ns … ~584 years.
const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram.
///
/// Sample `v` (nanoseconds) lands in bucket `⌊log₂ v⌋`, so reported
/// quantiles carry at most 2× relative error — plenty for p50/p95/p99
/// monitoring, and recording is a single relaxed `fetch_add`.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record_ns(&self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one latency sample from a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The latency at quantile `q` in [0, 1], in nanoseconds (upper bound of
    /// the containing bucket), or 0 with no samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the target sample (1-based), clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper edge of bucket i = 2^(i+1) - 1, capped by the true max.
                let edge = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return edge.min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Computes the percentile summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let mean_us = if count == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / count as f64 / 1e3
        };
        HistogramSnapshot {
            count,
            mean_us,
            p50_us: self.quantile_ns(0.50) as f64 / 1e3,
            p95_us: self.quantile_ns(0.95) as f64 / 1e3,
            p99_us: self.quantile_ns(0.99) as f64 / 1e3,
            max_us: self.max_ns.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// Percentile summary of a [`LatencyHistogram`] (microseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Mean latency, µs (exact — from the running sum, not the buckets).
    pub mean_us: f64,
    /// Median latency, µs (bucket upper bound; ≤2× relative error).
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Largest observed latency, µs (exact).
    pub max_us: f64,
}

/// Cumulative serving counters. All increments are relaxed atomics.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub submitted: AtomicU64,
    /// Requests answered with scores.
    pub completed: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests rejected at admission because the tenant was at its
    /// weighted queue share.
    pub rejected_quota: AtomicU64,
    /// Requests rejected at admission because a schedule failed static
    /// verification.
    pub rejected_invalid: AtomicU64,
    /// Requests dropped because their deadline expired before scoring.
    pub expired: AtomicU64,
    /// Requests naming a model the registry does not hold.
    pub unknown_model: AtomicU64,
    /// Engine batches executed by batcher threads.
    pub batches: AtomicU64,
    /// Client jobs coalesced into those batches (≥ `batches`).
    pub coalesced_jobs: AtomicU64,
    /// Candidates scored (cache hits included).
    pub candidates: AtomicU64,
    /// End-to-end latency (enqueue → reply) of completed requests.
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters plus the current queue depth, the registry's
    /// rejected-install count, and per-model engine stats into a
    /// serializable snapshot.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        rejected_installs: u64,
        models: Vec<ModelStatsSnapshot>,
        tenants: Vec<crate::tenant::TenantStatsSnapshot>,
    ) -> ServeSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let coalesced = self.coalesced_jobs.load(Ordering::Relaxed);
        ServeSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            unknown_model: self.unknown_model.load(Ordering::Relaxed),
            rejected_installs,
            batches,
            coalesced_jobs: coalesced,
            mean_jobs_per_batch: if batches == 0 {
                0.0
            } else {
                coalesced as f64 / batches as f64
            },
            candidates: self.candidates.load(Ordering::Relaxed),
            queue_depth,
            latency_us: self.latency.snapshot(),
            models,
            tenants,
            breaker: None,
        }
    }
}

/// One installed model version's identity and engine counters.
#[derive(Clone, Debug, Serialize)]
pub struct ModelStatsSnapshot {
    /// Registry name.
    pub name: String,
    /// Monotonic version installed under that name.
    pub version: u64,
    /// The version's private engine counters (cache traffic, micro-batches).
    pub engine: EngineStats,
}

/// A point-in-time JSON-serializable view of the whole serving layer.
#[derive(Clone, Debug, Serialize)]
pub struct ServeSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered with scores.
    pub completed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected_overload: u64,
    /// Requests rejected at admission (tenant at its weighted queue share).
    pub rejected_quota: u64,
    /// Requests rejected at admission (schedule failed static verification).
    pub rejected_invalid: u64,
    /// Requests dropped on deadline expiry.
    pub expired: u64,
    /// Requests naming an unknown model.
    pub unknown_model: u64,
    /// Model installs rejected by the registry's `tlp-modelcheck` audit
    /// gate (a corrupt or inconsistent model that never became resolvable).
    pub rejected_installs: u64,
    /// Engine batches executed.
    pub batches: u64,
    /// Client jobs coalesced into those batches.
    pub coalesced_jobs: u64,
    /// Average jobs amortized per engine batch.
    pub mean_jobs_per_batch: f64,
    /// Candidates scored.
    pub candidates: u64,
    /// Jobs waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// End-to-end request latency percentiles.
    pub latency_us: HistogramSnapshot,
    /// Per-model engine counters.
    pub models: Vec<ModelStatsSnapshot>,
    /// Per-tenant QoS accounting (queue occupancy, dispatch totals, quota
    /// rejections), sorted by tenant name.
    pub tenants: Vec<crate::tenant::TenantStatsSnapshot>,
    /// Client-side circuit-breaker state, filled in by
    /// [`RemoteCostModel::stats`](crate::RemoteCostModel::stats); `None` on
    /// server-side snapshots.
    pub breaker: Option<crate::backend::BreakerSnapshot>,
}

impl ServeSnapshot {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0.0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }

    #[test]
    fn quantiles_bracket_samples_within_bucket_error() {
        let h = LatencyHistogram::new();
        // 100 samples: 1µs … 100µs.
        for i in 1..=100u64 {
            h.record_ns(i * 1_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // log2 buckets give at most 2x overestimate, never underestimate of
        // the true quantile's bucket floor.
        assert!(s.p50_us >= 50.0 && s.p50_us <= 128.0, "p50 {}", s.p50_us);
        assert!(s.p99_us >= 99.0 && s.p99_us <= 200.0, "p99 {}", s.p99_us);
        assert!((s.max_us - 100.0).abs() < 1e-9);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        // Quantiles are monotone.
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn max_caps_bucket_upper_edge() {
        let h = LatencyHistogram::new();
        h.record_ns(1_025); // bucket [1024, 2047]
        let s = h.snapshot();
        // With one sample every quantile is that sample, capped at true max.
        assert!((s.p50_us - 1.025).abs() < 1e-9);
        assert!((s.p99_us - 1.025).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let stats = ServeStats::default();
        stats.latency.record_ns(5_000);
        ServeStats::bump(&stats.submitted);
        ServeStats::bump(&stats.completed);
        let snap = stats.snapshot(3, 0, vec![], vec![]);
        let json = snap.to_json();
        assert!(json.contains("\"submitted\": 1"));
        assert!(json.contains("\"queue_depth\": 3"));
        assert!(json.contains("p99_us"));
    }
}
