//! Closed-loop multi-client load generator for the serving layer.
//!
//! Drives N client threads against a [`ServeClient`], each issuing its next
//! request as soon as the previous one completes (closed loop), and reports
//! client-observed latency percentiles, throughput, and the server's own
//! stats snapshot. The same harness backs the `serve-bench` CLI subcommand
//! and the `serving_load` benchmark that writes `BENCH_serving.json`.
//!
//! Clients draw candidate batches from a shared pre-generated pool through
//! per-client rotating windows, so concurrent clients overlap on candidates
//! the way concurrent tuners sharing a task do — which is exactly the
//! workload the engine's score cache and the batcher's coalescing are built
//! for.

use crate::server::ServeClient;
use crate::stats::{HistogramSnapshot, LatencyHistogram, ServeSnapshot};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tlp_autotuner::{Candidate, SearchTask, SketchPolicy};
use tlp_schedule::ScheduleSequence;

/// Closed-loop load shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenOptions {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues before exiting.
    pub requests_per_client: usize,
    /// Candidates per request.
    pub batch: usize,
    /// Optional per-request deadline.
    pub deadline: Option<Duration>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            clients: 8,
            requests_per_client: 40,
            batch: 16,
            deadline: None,
        }
    }
}

/// What a load run observed, from the clients' side and the server's side.
#[derive(Clone, Debug, Serialize)]
pub struct LoadReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issued.
    pub requests_per_client: usize,
    /// Candidates per request.
    pub batch: usize,
    /// Requests answered with scores.
    pub ok: u64,
    /// Requests that failed with a [`crate::ServeError`].
    pub errors: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_s: f64,
    /// Scored candidates per wall-clock second.
    pub candidates_per_s: f64,
    /// Client-observed end-to-end latency (submit → reply).
    pub client_latency_us: HistogramSnapshot,
    /// The server's stats snapshot at the end of the run.
    pub server: ServeSnapshot,
}

impl LoadReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

/// Pre-generates a shared pool of `n` random candidate schedules for `task`.
pub fn random_pool(task: &SearchTask, n: usize, seed: u64) -> Vec<ScheduleSequence> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = SketchPolicy::cpu();
    (0..n)
        .map(|_| Candidate::random(&policy, &task.subgraph, &mut rng).sequence)
        .collect()
}

/// Runs `opts.clients` closed-loop clients against `model`, drawing batches
/// from `pool`, and returns the combined report.
///
/// # Panics
///
/// Panics if `pool` is empty or `opts.batch` is zero.
pub fn run_closed_loop(
    client: &ServeClient,
    model: &str,
    task: &SearchTask,
    pool: &[ScheduleSequence],
    opts: &LoadgenOptions,
) -> LoadReport {
    assert!(!pool.is_empty(), "candidate pool must be non-empty");
    assert!(opts.batch > 0, "batch size must be non-zero");
    let latency = LatencyHistogram::new();
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..opts.clients {
            let client = client.clone();
            let (latency, ok, errors) = (&latency, &ok, &errors);
            scope.spawn(move || {
                for r in 0..opts.requests_per_client {
                    // Rotating per-client window: overlapping but not
                    // identical batches across clients and rounds.
                    let begin = (c * 17 + r * opts.batch) % pool.len();
                    let batch: Vec<ScheduleSequence> = (0..opts.batch)
                        .map(|i| pool[(begin + i) % pool.len()].clone())
                        .collect();
                    let t0 = Instant::now();
                    let result = match opts.deadline {
                        None => client.score(model, task, &batch),
                        Some(d) => client.score_with_deadline(model, task, &batch, d),
                    };
                    latency.record(t0.elapsed());
                    match result {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let ok = ok.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    LoadReport {
        clients: opts.clients,
        requests_per_client: opts.requests_per_client,
        batch: opts.batch,
        ok,
        errors,
        wall_s,
        requests_per_s: ok as f64 / wall_s,
        candidates_per_s: (ok * opts.batch as u64) as f64 / wall_s,
        client_latency_us: latency.snapshot(),
        server: client.stats(),
    }
}
