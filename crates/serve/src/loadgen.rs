//! Closed-loop multi-client load generator for the serving layer.
//!
//! Drives N client threads against a [`ServeClient`], each issuing its next
//! request as soon as the previous one completes (closed loop), and reports
//! client-observed latency percentiles, throughput, and the server's own
//! stats snapshot. The same harness backs the `serve-bench` CLI subcommand
//! and the `serving_load` benchmark that writes `BENCH_serving.json`.
//!
//! Clients draw candidate batches from a shared pre-generated pool through
//! per-client rotating windows, so concurrent clients overlap on candidates
//! the way concurrent tuners sharing a task do — which is exactly the
//! workload the engine's score cache and the batcher's coalescing are built
//! for.

use crate::router::FleetClient;
use crate::server::ServeClient;
use crate::stats::{HistogramSnapshot, LatencyHistogram, ServeSnapshot};
use crate::tenant::DEFAULT_TENANT;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tlp_autotuner::{Candidate, SearchTask, SketchPolicy};
use tlp_schedule::ScheduleSequence;

/// Closed-loop load shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenOptions {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues before exiting.
    pub requests_per_client: usize,
    /// Candidates per request.
    pub batch: usize,
    /// Optional per-request deadline.
    pub deadline: Option<Duration>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            clients: 8,
            requests_per_client: 40,
            batch: 16,
            deadline: None,
        }
    }
}

/// What a load run observed, from the clients' side and the server's side.
#[derive(Clone, Debug, Serialize)]
pub struct LoadReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issued.
    pub requests_per_client: usize,
    /// Candidates per request.
    pub batch: usize,
    /// Requests answered with scores.
    pub ok: u64,
    /// Requests that failed with a [`crate::ServeError`].
    pub errors: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_s: f64,
    /// Scored candidates per wall-clock second.
    pub candidates_per_s: f64,
    /// Client-observed end-to-end latency (submit → reply).
    pub client_latency_us: HistogramSnapshot,
    /// The server's stats snapshot at the end of the run.
    pub server: ServeSnapshot,
}

impl LoadReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

/// Pre-generates a shared pool of `n` random candidate schedules for `task`.
pub fn random_pool(task: &SearchTask, n: usize, seed: u64) -> Vec<ScheduleSequence> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = SketchPolicy::cpu();
    (0..n)
        .map(|_| Candidate::random(&policy, &task.subgraph, &mut rng).sequence)
        .collect()
}

/// Runs `opts.clients` closed-loop clients against `model`, drawing batches
/// from `pool`, and returns the combined report.
///
/// # Panics
///
/// Panics if `pool` is empty or `opts.batch` is zero.
pub fn run_closed_loop(
    client: &ServeClient,
    model: &str,
    task: &SearchTask,
    pool: &[ScheduleSequence],
    opts: &LoadgenOptions,
) -> LoadReport {
    assert!(!pool.is_empty(), "candidate pool must be non-empty");
    assert!(opts.batch > 0, "batch size must be non-zero");
    let latency = LatencyHistogram::new();
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..opts.clients {
            let client = client.clone();
            let (latency, ok, errors) = (&latency, &ok, &errors);
            scope.spawn(move || {
                for r in 0..opts.requests_per_client {
                    // Rotating per-client window: overlapping but not
                    // identical batches across clients and rounds.
                    let begin = (c * 17 + r * opts.batch) % pool.len();
                    let batch: Vec<ScheduleSequence> = (0..opts.batch)
                        .map(|i| pool[(begin + i) % pool.len()].clone())
                        .collect();
                    let t0 = Instant::now();
                    let result = match opts.deadline {
                        None => client.score(model, task, &batch),
                        Some(d) => client.score_with_deadline(model, task, &batch, d),
                    };
                    latency.record(t0.elapsed());
                    match result {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let ok = ok.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    LoadReport {
        clients: opts.clients,
        requests_per_client: opts.requests_per_client,
        batch: opts.batch,
        ok,
        errors,
        wall_s,
        requests_per_s: ok as f64 / wall_s,
        candidates_per_s: (ok * opts.batch as u64) as f64 / wall_s,
        client_latency_us: latency.snapshot(),
        server: client.stats(),
    }
}

// ---------------------------------------------------------------------------
// Deterministic event-driven fleet simulation
// ---------------------------------------------------------------------------
//
// Measuring fleet *scaling* with real threads is meaningless on a small
// machine: 8 shards of batchers on a single core time-slice each other and
// the "fleet" scales by exactly nothing. The fleet harness therefore
// simulates only **time** — a discrete-event loop over integer nanoseconds
// where each shard is a unit-capacity service station — while everything
// semantic stays real: requests route through the real `FleetClient`
// (real consistent hashing, real breakers, real health gossip, real chaos
// injection) into real shard servers scoring real schedules on real
// models. A request's *service time* is charged from a calibrated
// [`SimServiceModel`] using the reply's actual `BatchStats` (cache hits
// vs misses), and queueing emerges from shard busy-times. The loop is
// single-threaded and pops events in `(time, client)` order, so every run
// with the same seed is bit-identical — which is what lets the bench
// hard-assert "rate-0 chaos == no chaos" and p99 bounds instead of
// eyeballing noisy wall-clock numbers.

/// Calibrated per-request service-time model (microseconds), charged in
/// simulated time from the reply's real cache accounting.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SimServiceModel {
    /// Fixed per-request overhead (routing, queue hop, reply).
    pub base_us: f64,
    /// Per-candidate cost when the shard's score cache hits.
    pub hit_us: f64,
    /// Per-candidate cost when the candidate needs model inference.
    pub miss_us: f64,
    /// Extra latency per failover hop (skipped or failed shard).
    pub failover_penalty_us: f64,
}

impl Default for SimServiceModel {
    fn default() -> Self {
        SimServiceModel {
            base_us: 50.0,
            hit_us: 0.5,
            miss_us: 20.0,
            failover_penalty_us: 100.0,
        }
    }
}

impl SimServiceModel {
    /// Service nanoseconds for a reply with the given cache traffic.
    fn service_ns(&self, hits: u32, misses: u32, failovers: u32) -> u64 {
        let us = self.base_us
            + self.hit_us * f64::from(hits)
            + self.miss_us * f64::from(misses)
            + self.failover_penalty_us * f64::from(failovers);
        (us * 1e3).max(1.0) as u64
    }
}

/// Fleet-simulation load shape.
#[derive(Clone, Debug)]
pub struct FleetLoadOptions {
    /// Simulated closed-loop clients.
    pub clients: usize,
    /// Requests each simulated client issues.
    pub requests_per_client: usize,
    /// Candidates per request.
    pub batch: usize,
    /// Tenant labels, assigned to clients round-robin. Empty = every client
    /// is the default tenant.
    pub tenants: Vec<String>,
}

impl Default for FleetLoadOptions {
    fn default() -> Self {
        FleetLoadOptions {
            clients: 64,
            requests_per_client: 8,
            batch: 16,
            tenants: Vec::new(),
        }
    }
}

/// Exact (not bucketed) latency percentiles from the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct SimLatencySummary {
    /// Completed requests.
    pub count: u64,
    /// Mean simulated latency, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
}

fn exact_summary(mut ns: Vec<u64>) -> SimLatencySummary {
    if ns.is_empty() {
        return SimLatencySummary::default();
    }
    ns.sort_unstable();
    let count = ns.len() as u64;
    let pick = |q: f64| {
        let rank = ((q * count as f64).ceil() as usize).clamp(1, ns.len());
        ns[rank - 1] as f64 / 1e3
    };
    SimLatencySummary {
        count,
        mean_us: ns.iter().sum::<u64>() as f64 / count as f64 / 1e3,
        p50_us: pick(0.50),
        p95_us: pick(0.95),
        p99_us: pick(0.99),
        max_us: *ns.last().unwrap_or(&0) as f64 / 1e3,
    }
}

/// What a fleet simulation observed.
#[derive(Clone, Debug, Serialize)]
pub struct FleetLoadReport {
    /// Shards behind the router.
    pub shards: usize,
    /// Simulated clients.
    pub clients: usize,
    /// Candidates per request.
    pub batch: usize,
    /// Requests answered with scores.
    pub ok: u64,
    /// Requests that exhausted every shard.
    pub errors: u64,
    /// Failover hops summed over successful replies.
    pub failovers: u64,
    /// Simulated wall-clock seconds (the last completion time).
    pub sim_wall_s: f64,
    /// Completed requests per simulated second.
    pub requests_per_s: f64,
    /// Scored candidates per simulated second.
    pub candidates_per_s: f64,
    /// Exact simulated-latency percentiles.
    pub latency_us: SimLatencySummary,
    /// Order-sensitive digest of every reply's `(shard, score bits)` — two
    /// runs with identical semantics produce identical digests, so
    /// bit-identity is one `assert_eq!`.
    pub score_digest: u64,
    /// Order-sensitive digest of every completion `(client, latency_ns)`.
    pub latency_digest: u64,
}

/// Runs the deterministic event-driven fleet simulation: `opts.clients`
/// closed-loop clients over `tasks` (assigned round-robin, so distinct
/// routing keys spread across shards), each drawing rotating windows from
/// the matching pool. Scoring, routing, breakers, and chaos all execute
/// for real; only time is simulated.
///
/// # Panics
///
/// Panics if `tasks`/`pools` are empty or mismatched, or `opts.batch` is 0.
pub fn run_fleet_sim(
    client: &FleetClient,
    model: &str,
    tasks: &[SearchTask],
    pools: &[Vec<ScheduleSequence>],
    opts: &FleetLoadOptions,
    service: &SimServiceModel,
) -> FleetLoadReport {
    assert!(!tasks.is_empty(), "need at least one task");
    assert_eq!(tasks.len(), pools.len(), "one candidate pool per task");
    assert!(
        pools.iter().all(|p| !p.is_empty()),
        "pools must be non-empty"
    );
    assert!(opts.batch > 0, "batch size must be non-zero");
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let splitmix = crate::chaos::mix;
    let mut shard_free_ns = vec![0u64; client.shard_count()];
    let mut next_round = vec![0usize; opts.clients];
    // Seed every client at t=0; the heap orders by (time, client), so the
    // execution order — and therefore every cache and chaos interaction —
    // is a pure function of the inputs.
    let mut events: BinaryHeap<Reverse<(u64, usize)>> =
        (0..opts.clients).map(|c| Reverse((0u64, c))).collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(opts.clients * opts.requests_per_client);
    let (mut ok, mut errors, mut failovers) = (0u64, 0u64, 0u64);
    let (mut score_digest, mut latency_digest) = (0u64, 0u64);
    let mut end_ns = 0u64;

    while let Some(Reverse((now, c))) = events.pop() {
        let round = next_round[c];
        if round >= opts.requests_per_client {
            continue;
        }
        next_round[c] = round + 1;
        let task_idx = c % tasks.len();
        let pool = &pools[task_idx];
        let tenant: &str = if opts.tenants.is_empty() {
            DEFAULT_TENANT
        } else {
            &opts.tenants[c % opts.tenants.len()]
        };
        let begin = (c * 17 + round * opts.batch) % pool.len();
        let batch: Vec<ScheduleSequence> = (0..opts.batch)
            .map(|i| pool[(begin + i) % pool.len()].clone())
            .collect();
        let done_ns = match client.score_detailed(tenant, model, &tasks[task_idx], &batch, None) {
            Ok(fr) => {
                ok += 1;
                failovers += u64::from(fr.failovers);
                for s in &fr.reply.scores {
                    score_digest =
                        splitmix(score_digest ^ u64::from(s.map_or(u32::MAX, f32::to_bits)));
                }
                score_digest = splitmix(score_digest ^ fr.shard as u64);
                let svc = service.service_ns(
                    fr.reply.stats.cache_hits,
                    fr.reply.stats.cache_misses,
                    fr.failovers,
                );
                // Unit-capacity shard: start when both the request has
                // arrived and the shard is free. Queueing delay emerges
                // here — and shrinks as shards are added.
                let start = now.max(shard_free_ns[fr.shard]);
                let done = start + svc;
                shard_free_ns[fr.shard] = done;
                done
            }
            Err(_) => {
                // Every shard skipped or failed: the client observes the
                // full failover sweep but occupies no shard.
                errors += 1;
                now + service.service_ns(0, 0, client.shard_count() as u32)
            }
        };
        let latency = done_ns - now;
        latencies_ns.push(latency);
        latency_digest = splitmix(latency_digest ^ latency ^ ((c as u64) << 40));
        end_ns = end_ns.max(done_ns);
        events.push(Reverse((done_ns, c)));
    }

    let sim_wall_s = (end_ns as f64 / 1e9).max(1e-12);
    FleetLoadReport {
        shards: client.shard_count(),
        clients: opts.clients,
        batch: opts.batch,
        ok,
        errors,
        failovers,
        sim_wall_s,
        requests_per_s: ok as f64 / sim_wall_s,
        candidates_per_s: (ok * opts.batch as u64) as f64 / sim_wall_s,
        latency_us: exact_summary(latencies_ns),
        score_digest,
        latency_digest,
    }
}
