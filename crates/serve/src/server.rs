//! The serving front end: bounded admission queue, dynamic batcher threads,
//! and the client handle.
//!
//! Clients submit `(model name, task, candidates)` jobs through a
//! [`ServeClient`]. Admission is bounded: a full queue rejects with
//! [`ServeError::Overloaded`] *before* enqueueing, so rejected load costs
//! O(1) and server memory never grows with it. Batcher threads pull the
//! oldest job, then coalesce every queued job for the same `(model, task)`
//! into one engine batch — topping up for at most
//! [`BatchPolicy::max_wait`] while the batch is below
//! [`BatchPolicy::max_batch`] candidates — so many small tuner requests
//! amortize into the engine's micro-batched parallel path. Each batch scores
//! on the [`ModelVersion`] resolved at execution time and carries that
//! version tag back to the client; a hot-swap between two batches is
//! invisible to in-flight work.
//!
//! Shutdown is graceful: new submissions fail with
//! [`ServeError::ShuttingDown`] while batchers keep flushing (without the
//! coalescing wait) until the queue is empty, so every admitted request gets
//! an answer.

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use crate::stats::{ServeSnapshot, ServeStats};
use crate::tenant::{TenantPolicy, TenantTable, DEFAULT_TENANT};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tlp::engine::task_fingerprint;
use tlp_autotuner::{BatchStats, SearchTask};
use tlp_schedule::ScheduleSequence;

/// Dynamic-batching policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Stop coalescing once a batch holds this many candidates. Not a hard
    /// split: a single oversized job still runs whole (the engine
    /// micro-batches internally).
    pub max_batch: usize,
    /// How long a batch below `max_batch` may wait for more jobs, measured
    /// from the oldest job's enqueue time. Zero flushes immediately.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 512,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// Server sizing knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission-queue capacity; submission `capacity + 1` while the queue
    /// is full gets [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Batcher threads. `0` starts a paused server that admits but never
    /// executes jobs — useful for tests exercising admission control;
    /// [`Server::shutdown`] then answers leftovers with
    /// [`ServeError::ShuttingDown`].
    pub batchers: usize,
    /// Coalescing policy.
    pub policy: BatchPolicy,
    /// Statically verify every submitted schedule at admission
    /// ([`tlp_verify::verify`]) and reject requests whose schedules carry
    /// verifier *errors* with [`ServeError::InvalidSchedule`]. Warnings and
    /// lints never reject. On by default: an invalid schedule would waste a
    /// batcher slot scoring a program the lowerer rejects anyway.
    pub validate_admission: bool,
    /// Audit every model install through the `tlp-modelcheck` static
    /// analyzer and reject models with error-severity diagnostics
    /// ([`tlp::persist::PersistError::Invalid`]) before they become
    /// resolvable. Applied to the registry at [`Server::start`]. On by
    /// default: hot-swapping in a corrupt model would poison every
    /// subsequent score; rejected installs are counted in
    /// [`ServeSnapshot::rejected_installs`](crate::stats::ServeSnapshot).
    pub validate_install: bool,
    /// Per-tenant QoS: weighted admission shares and fair-share dispatch.
    /// The default policy has a single auto-registered tenant class, which
    /// reduces to plain FIFO + global capacity — identical to pre-tenant
    /// behavior.
    pub tenants: TenantPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            batchers: 2,
            policy: BatchPolicy::default(),
            validate_admission: true,
            validate_install: true,
            tenants: TenantPolicy::default(),
        }
    }
}

/// A completed score request.
#[derive(Clone, Debug)]
pub struct ScoreReply {
    /// Per-candidate optional scores, parallel to the submitted schedules
    /// (`None` = unscoreable candidate).
    pub scores: Vec<Option<f32>>,
    /// The model version that produced the scores.
    pub model_version: u64,
    /// Engine accounting for the *coalesced* batch this job rode in (shared
    /// by all jobs in the batch).
    pub stats: BatchStats,
    /// Time this job spent queued before its batch executed, µs.
    pub queue_us: u64,
    /// Number of client jobs coalesced into the engine batch.
    pub batch_jobs: usize,
}

struct Job {
    tenant: String,
    model: String,
    task_fp: u64,
    task: SearchTask,
    schedules: Vec<ScheduleSequence>,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<ScoreReply, ServeError>>,
}

struct QueueState {
    queue: VecDeque<Job>,
    tenants: TenantTable,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    validate_admission: bool,
    stats: ServeStats,
    registry: Arc<ModelRegistry>,
}

impl Shared {
    /// Locks the queue state, recovering from poisoning: a batcher that
    /// panicked mid-batch leaves the queue structurally intact (jobs are
    /// popped before scoring), so continuing with the inner state is safe
    /// and keeps the other batchers and clients alive.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn snapshot(&self) -> ServeSnapshot {
        let (depth, tenants) = {
            let st = self.lock_state();
            (st.queue.len(), st.tenants.snapshot())
        };
        self.stats.snapshot(
            depth,
            self.registry.rejected_installs(),
            self.registry.stats(),
            tenants,
        )
    }
}

/// The serving layer: owns the queue and the batcher threads.
///
/// Create with [`Server::start`], hand out [`ServeClient`]s via
/// [`Server::client`], and stop with [`Server::shutdown`] (dropping the
/// server shuts it down too).
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `config.batchers` batcher threads over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Server {
        registry.set_audit_installs(config.validate_install);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_capacity.min(1 << 16)),
                tenants: TenantTable::new(&config.tenants),
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity: config.queue_capacity,
            validate_admission: config.validate_admission,
            stats: ServeStats::default(),
            registry,
        });
        let handles = (0..config.batchers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let policy = config.policy;
                std::thread::Builder::new()
                    .name(format!("tlp-serve-batcher-{i}"))
                    .spawn(move || batcher_loop(&shared, policy))
                    .unwrap_or_else(|e| panic!("spawn batcher thread: {e}"))
            })
            .collect();
        Server { shared, handles }
    }

    /// A cloneable client handle for this server.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The registry this server scores through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Point-in-time serving stats (counters, queue depth, latency
    /// percentiles, per-model engine stats).
    pub fn stats(&self) -> ServeSnapshot {
        self.shared.snapshot()
    }

    /// Graceful shutdown: stops admitting, lets batchers drain every queued
    /// job, joins them, and returns the final stats snapshot. With zero
    /// batchers, leftover jobs are answered [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.stop();
        self.shared.snapshot()
    }

    fn stop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Only reachable with zero batchers: nobody will drain the queue.
        let leftovers: Vec<Job> = {
            let mut st = self.shared.lock_state();
            st.queue.drain(..).collect()
        };
        for job in leftovers {
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A cheap, cloneable handle submitting score requests to a [`Server`].
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
}

impl ServeClient {
    /// Scores `schedules` for `task` on the model named `model`, blocking
    /// until the reply arrives.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]: unknown model, full queue, shutdown, or a dropped
    /// reply channel.
    pub fn score(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
    ) -> Result<ScoreReply, ServeError> {
        self.submit(model, task, schedules, None)?.wait()
    }

    /// Like [`ServeClient::score`] but attributed to `tenant` for QoS
    /// accounting (weighted admission share, fair-share dispatch). Tenancy
    /// never affects scores or cache keys — only scheduling.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`], including [`ServeError::TenantOverQuota`] when
    /// the tenant is at its admission share.
    pub fn score_as(
        &self,
        tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<ScoreReply, ServeError> {
        self.submit_as(tenant, model, task, schedules, deadline)?
            .wait()
    }

    /// Like [`ServeClient::score`] with a deadline: the request fails with
    /// [`ServeError::DeadlineExceeded`] if scoring has not completed within
    /// `deadline` of submission (checked both server-side before scoring and
    /// client-side while waiting).
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn score_with_deadline(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Duration,
    ) -> Result<ScoreReply, ServeError> {
        self.submit(model, task, schedules, Some(deadline))?.wait()
    }

    /// Submits without waiting, returning a [`PendingScore`] to collect
    /// later. Lets one client pipeline several requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::Overloaded`], or
    /// [`ServeError::ShuttingDown`] — all admission-time failures.
    pub fn submit(
        &self,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<PendingScore, ServeError> {
        self.submit_as(DEFAULT_TENANT, model, task, schedules, deadline)
    }

    /// Like [`ServeClient::submit`] but attributed to `tenant`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::Overloaded`],
    /// [`ServeError::TenantOverQuota`], or [`ServeError::ShuttingDown`] —
    /// all admission-time failures.
    pub fn submit_as(
        &self,
        tenant: &str,
        model: &str,
        task: &SearchTask,
        schedules: &[ScheduleSequence],
        deadline: Option<Duration>,
    ) -> Result<PendingScore, ServeError> {
        // Fast-fail before paying for the clone: an unknown model can never
        // become scoreable by queueing (installs race admission either way).
        if self.shared.registry.resolve(model).is_none() {
            ServeStats::bump(&self.shared.stats.unknown_model);
            return Err(ServeError::UnknownModel(model.to_string()));
        }
        // Static verification gate: reject before cloning or enqueueing, so
        // an invalid schedule costs O(verify) and never reaches a batcher.
        if self.shared.validate_admission {
            let opts = tlp_verify::VerifyOptions {
                gpu: Some(task.platform.is_gpu()),
                ..tlp_verify::VerifyOptions::default()
            };
            for (index, schedule) in schedules.iter().enumerate() {
                let report = tlp_verify::verify_with(&task.subgraph, schedule, &opts);
                if report.has_errors() {
                    ServeStats::bump(&self.shared.stats.rejected_invalid);
                    return Err(ServeError::InvalidSchedule {
                        index,
                        diagnostics: report.diagnostics,
                    });
                }
            }
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            tenant: tenant.to_string(),
            model: model.to_string(),
            task_fp: task_fingerprint(task),
            task: task.clone(),
            schedules: schedules.to_vec(),
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            reply: tx,
        };
        {
            let mut st = self.shared.lock_state();
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.capacity {
                ServeStats::bump(&self.shared.stats.rejected_overload);
                return Err(ServeError::Overloaded {
                    capacity: self.shared.capacity,
                });
            }
            if let Err(share) = st.tenants.admit(tenant, self.shared.capacity) {
                ServeStats::bump(&self.shared.stats.rejected_quota);
                return Err(ServeError::TenantOverQuota {
                    tenant: tenant.to_string(),
                    share,
                });
            }
            st.queue.push_back(job);
        }
        ServeStats::bump(&self.shared.stats.submitted);
        self.shared.cv.notify_one();
        Ok(PendingScore {
            rx,
            deadline: deadline.map(|d| now + d),
        })
    }

    /// Current serving stats.
    pub fn stats(&self) -> ServeSnapshot {
        self.shared.snapshot()
    }
}

/// An in-flight request; consume with [`PendingScore::wait`].
pub struct PendingScore {
    rx: mpsc::Receiver<Result<ScoreReply, ServeError>>,
    deadline: Option<Instant>,
}

impl PendingScore {
    /// Blocks until the reply arrives (or the deadline passes).
    ///
    /// # Errors
    ///
    /// The server's reply error, [`ServeError::DeadlineExceeded`] if the
    /// deadline passes first, or [`ServeError::Disconnected`] if the server
    /// was torn down without answering.
    pub fn wait(self) -> Result<ScoreReply, ServeError> {
        match self.deadline {
            None => self.rx.recv().unwrap_or(Err(ServeError::Disconnected)),
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match self.rx.recv_timeout(timeout) {
                    Ok(reply) => reply,
                    Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
                }
            }
        }
    }
}

/// One coalesced unit of work: jobs sharing a `(model, task)` key.
struct Group {
    model: String,
    task_fp: u64,
    jobs: Vec<Job>,
    candidates: usize,
    first_enqueued: Instant,
}

impl Group {
    fn seed(job: Job) -> Group {
        Group {
            model: job.model.clone(),
            task_fp: job.task_fp,
            candidates: job.schedules.len(),
            first_enqueued: job.enqueued,
            jobs: vec![job],
        }
    }

    /// Moves matching queued jobs into the group until `max_batch`, charging
    /// each move to its tenant. Coalescing crosses tenant boundaries on
    /// purpose: replies are split per job, so sharing a batch shares compute
    /// without sharing scores, and every coalesced job still advances its
    /// own tenant's pass.
    fn top_up(&mut self, queue: &mut VecDeque<Job>, tenants: &mut TenantTable, max_batch: usize) {
        let mut i = 0;
        while i < queue.len() && self.candidates < max_batch {
            if queue[i].model == self.model && queue[i].task_fp == self.task_fp {
                if let Some(job) = queue.remove(i) {
                    tenants.on_dispatch(&job.tenant, job.schedules.len());
                    self.candidates += job.schedules.len();
                    self.jobs.push(job);
                }
            } else {
                i += 1;
            }
        }
    }
}

/// Pops the queued job whose tenant currently has the lowest virtual pass
/// (stride scheduling; FIFO within a tenant since the scan prefers the
/// earliest index on ties), charging the dispatch to the tenant table. With
/// one tenant this degenerates to `pop_front`.
fn pick_fair(st: &mut QueueState) -> Option<Job> {
    let mut best: Option<(u64, usize)> = None;
    for (i, job) in st.queue.iter().enumerate() {
        let pass = st.tenants.pass_of(&job.tenant);
        if best.is_none_or(|(bp, _)| pass < bp) {
            best = Some((pass, i));
        }
    }
    let (_, idx) = best?;
    let job = st.queue.remove(idx)?;
    st.tenants.on_dispatch(&job.tenant, job.schedules.len());
    Some(job)
}

/// Per-batcher-thread scratch reused across executed batches: the gathered
/// schedule slice for multi-job groups and the engine output buffer. Both
/// warm up once and then serve every subsequent batch without reallocating.
#[derive(Default)]
struct ExecScratch {
    all: Vec<ScheduleSequence>,
    scores: Vec<Option<f32>>,
}

fn batcher_loop(shared: &Shared, policy: BatchPolicy) {
    let mut scratch = ExecScratch::default();
    loop {
        let mut st = shared.lock_state();
        // Sleep until there is work (or we are told to exit).
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.shutdown {
                return;
            }
            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let Some(first) = pick_fair(&mut st) else {
            continue; // Unreachable: the wait loop guarantees a non-empty queue.
        };
        let mut group = Group::seed(first);
        {
            let QueueState { queue, tenants, .. } = &mut *st;
            group.top_up(queue, tenants, policy.max_batch);
        }
        // Below target size: hold the batch open for stragglers, measured
        // from the oldest job so no request waits more than max_wait here.
        // Shutdown flushes immediately.
        let wait_until = group.first_enqueued + policy.max_wait;
        while group.candidates < policy.max_batch && !st.shutdown {
            let now = Instant::now();
            if now >= wait_until {
                break;
            }
            let (guard, timed_out) = shared
                .cv
                .wait_timeout(st, wait_until - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            {
                let QueueState { queue, tenants, .. } = &mut *st;
                group.top_up(queue, tenants, policy.max_batch);
            }
            if timed_out.timed_out() {
                break;
            }
        }
        drop(st);
        execute(shared, group, &mut scratch);
    }
}

fn execute(shared: &Shared, group: Group, scratch: &mut ExecScratch) {
    let model = match shared.registry.resolve(&group.model) {
        Some(m) => m,
        None => {
            // Uninstalled between admission and execution.
            for job in group.jobs {
                ServeStats::bump(&shared.stats.unknown_model);
                let _ = job
                    .reply
                    .send(Err(ServeError::UnknownModel(group.model.clone())));
            }
            return;
        }
    };
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(group.jobs.len());
    for job in group.jobs {
        if job.deadline.is_some_and(|d| now >= d) {
            ServeStats::bump(&shared.stats.expired);
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    // Single-job groups (the common case under light load) score their
    // schedules in place; only multi-job groups gather into the reused
    // scratch slice. Either way the engine writes into the pooled output
    // buffer — no per-batch score vector.
    let n_candidates;
    let stats;
    if live.len() == 1 {
        n_candidates = live[0].schedules.len();
        stats = model.score_into(&live[0].task, &live[0].schedules, &mut scratch.scores);
    } else {
        scratch.all.clear();
        scratch
            .all
            .extend(live.iter().flat_map(|j| j.schedules.iter().cloned()));
        n_candidates = scratch.all.len();
        stats = model.score_into(&live[0].task, &scratch.all, &mut scratch.scores);
    }
    let scores = &scratch.scores;
    let done = Instant::now();
    let batch_jobs = live.len();
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .coalesced_jobs
        .fetch_add(batch_jobs as u64, Ordering::Relaxed);
    shared
        .stats
        .candidates
        .fetch_add(n_candidates as u64, Ordering::Relaxed);
    let mut offset = 0;
    for job in live {
        let n = job.schedules.len();
        let queue_us = done
            .saturating_duration_since(job.enqueued)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let reply = ScoreReply {
            scores: scores[offset..offset + n].to_vec(),
            model_version: model.version(),
            stats,
            queue_us,
            batch_jobs,
        };
        offset += n;
        ServeStats::bump(&shared.stats.completed);
        shared.stats.latency.record(done - job.enqueued);
        let _ = job.reply.send(Ok(reply));
    }
}
