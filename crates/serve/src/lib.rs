//! tlp-serve: a concurrent serving layer for TLP cost models.
//!
//! The tuning loop in `tlp-autotuner` owns a private [`InferenceEngine`]
//! per model — fine for one tuner, wasteful for many. In a tuning farm,
//! dozens of search processes score candidates against the *same* trained
//! model; giving each its own engine duplicates the model weights, splits
//! the score cache, and leaves batching efficiency on the floor because
//! each tuner's requests are small. This crate puts one server in front of
//! the engine and lets any number of clients share it:
//!
//! - **Dynamic batching** ([`server`]): client jobs land on a bounded
//!   queue; batcher threads coalesce jobs for the same `(model, task)`
//!   into single engine batches under a [`BatchPolicy`]
//!   (`max_batch`/`max_wait`), so many small requests amortize into the
//!   engine's micro-batched parallel path. Scores are bit-identical to
//!   direct engine calls — batching is a throughput optimization, never a
//!   semantic one.
//! - **Versioned hot-swap** ([`registry`]): models are installed by name
//!   from [`SavedTlp`] snapshots (or in-memory); [`ModelRegistry::install`]
//!   atomically replaces the current version while in-flight batches
//!   finish on the version they resolved. Each version owns its own engine
//!   and score cache, so a swap can never mix scores across versions.
//! - **Admission control** ([`server`], [`error`]): a full queue rejects
//!   with [`ServeError::Overloaded`] *before* enqueueing (bounded memory),
//!   per-request deadlines expire with [`ServeError::DeadlineExceeded`],
//!   and [`Server::shutdown`] drains every admitted job before returning.
//! - **Observability** ([`stats`]): lock-free latency histograms
//!   (p50/p95/p99), queue/throughput counters, and per-model
//!   [`EngineStats`](tlp::EngineStats), all serializable to JSON.
//! - **Fault tolerance** ([`backend`], [`chaos`]): [`RemoteCostModel`]
//!   retries transient errors with jittered backoff behind a
//!   [`CircuitBreaker`] (open → half-open probe → closed) and can fall
//!   back to a local model while the server is sick;
//!   [`FlakyTransport`] injects deterministic failures for chaos tests.
//!
//! Integration points: [`RemoteCostModel`] adapts a [`ServeClient`] to the
//! autotuner's [`CostModel`](tlp_autotuner::CostModel) trait, and
//! [`loadgen`] drives closed-loop multi-client load for the `serve-bench`
//! CLI subcommand and the `BENCH_serving.json` benchmark.
//!
//! ```
//! use std::sync::Arc;
//! use tlp::engine::EngineConfig;
//! use tlp_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let registry = Arc::new(ModelRegistry::new(EngineConfig::default()));
//! // registry.install("tlp-llvm", &snapshot)?;
//! let server = Server::start(registry, ServeConfig::default());
//! let client = server.client(); // Clone per client thread.
//! // client.score("tlp-llvm", &task, &candidates)?;
//! let final_stats = server.shutdown();
//! assert_eq!(final_stats.queue_depth, 0);
//! ```
//!
//! [`InferenceEngine`]: tlp::engine::InferenceEngine
//! [`SavedTlp`]: tlp::persist::SavedTlp

#![warn(clippy::disallowed_methods)]
#![warn(clippy::disallowed_types)] // std HashMap/HashSet ban: deterministic iteration only

pub mod backend;
pub mod chaos;
pub mod error;
pub mod fleet;
pub mod health;
pub mod loadgen;
pub mod registry;
pub mod router;
pub mod server;
pub mod stats;
pub mod tenant;

pub use backend::{
    BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker, EndpointBreaker, RemoteCostModel,
    RetryPolicy, ScoreTransport,
};
pub use chaos::FlakyTransport;
pub use error::ServeError;
pub use fleet::{FleetConfig, FleetSnapshot, ServingFleet, ShardSnapshot};
pub use health::{HealthBoard, HealthPolicy, ShardHealth};
pub use loadgen::{
    random_pool, run_closed_loop, run_fleet_sim, FleetLoadOptions, FleetLoadReport, LoadReport,
    LoadgenOptions, SimLatencySummary, SimServiceModel,
};
pub use registry::{LoadedScorer, ModelRegistry, ModelVersion};
pub use router::{route_key, FleetClient, FleetReply, HashRing, RouterStats};
pub use server::{BatchPolicy, PendingScore, ScoreReply, ServeClient, ServeConfig, Server};
pub use stats::{
    HistogramSnapshot, LatencyHistogram, ModelStatsSnapshot, ServeSnapshot, ServeStats,
};
pub use tenant::{TenantPolicy, TenantSpec, TenantStatsSnapshot, DEFAULT_TENANT};
