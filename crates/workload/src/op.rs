//! Anchor operators — the compute-intensive cores of computational subgraphs.
//!
//! A deep-learning compiler partitions a workload graph into subgraphs, each
//! dominated by one *anchor* operator (a matmul or convolution variant) plus
//! fused elementwise epilogues. The anchor determines the loop nest the
//! auto-scheduler tiles and annotates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a loop iterates over output space or a reduction domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// Output-space (parallelizable) loop.
    Spatial,
    /// Reduction loop.
    Reduction,
}

/// One loop of an anchor operator's nest.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopSpec {
    /// Loop variable name (e.g. `i`, `oc`, `k`).
    pub name: String,
    /// Trip count.
    pub extent: i64,
    /// Spatial or reduction.
    pub kind: LoopKind,
}

impl LoopSpec {
    /// Creates a spatial loop.
    pub fn spatial(name: &str, extent: i64) -> Self {
        LoopSpec {
            name: name.to_string(),
            extent,
            kind: LoopKind::Spatial,
        }
    }

    /// Creates a reduction loop.
    pub fn reduction(name: &str, extent: i64) -> Self {
        LoopSpec {
            name: name.to_string(),
            extent,
            kind: LoopKind::Reduction,
        }
    }
}

/// The anchor operator of a subgraph.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnchorOp {
    /// Dense (fully connected): `out[m,n] = Σ_k a[m,k]·b[k,n]`.
    Dense {
        /// Output rows (batch × sequence for transformers).
        m: i64,
        /// Output columns.
        n: i64,
        /// Reduction width.
        k: i64,
    },
    /// Batched matrix multiply `[b,m,k]×[b,k,n]`.
    BatchMatmul {
        /// Batch (e.g. batch × heads).
        b: i64,
        /// Rows.
        m: i64,
        /// Columns.
        n: i64,
        /// Reduction width.
        k: i64,
    },
    /// 2-D convolution (optionally grouped).
    Conv2d {
        /// Batch size.
        n: i64,
        /// Input channels.
        cin: i64,
        /// Input height/width (square).
        hw: i64,
        /// Output channels.
        cout: i64,
        /// Kernel size (square).
        khw: i64,
        /// Stride.
        stride: i64,
        /// Padding.
        pad: i64,
        /// Groups (1 = dense conv, `cin` = depthwise).
        groups: i64,
    },
    /// Max/average pooling.
    Pool {
        /// Batch size.
        n: i64,
        /// Channels.
        c: i64,
        /// Input height/width.
        hw: i64,
        /// Window size.
        khw: i64,
        /// Stride.
        stride: i64,
    },
    /// Row-wise softmax over `[rows, cols]`.
    Softmax {
        /// Number of independent rows.
        rows: i64,
        /// Normalized width.
        cols: i64,
    },
    /// Layer normalization over `[rows, cols]`.
    LayerNorm {
        /// Number of independent rows.
        rows: i64,
        /// Normalized width.
        cols: i64,
    },
}

impl AnchorOp {
    /// Short operator class name.
    pub fn name(&self) -> &'static str {
        match self {
            AnchorOp::Dense { .. } => "dense",
            AnchorOp::BatchMatmul { .. } => "batch_matmul",
            AnchorOp::Conv2d { groups, cin, .. } if *groups == *cin => "depthwise_conv2d",
            AnchorOp::Conv2d { groups, .. } if *groups > 1 => "group_conv2d",
            AnchorOp::Conv2d { .. } => "conv2d",
            AnchorOp::Pool { .. } => "pool",
            AnchorOp::Softmax { .. } => "softmax",
            AnchorOp::LayerNorm { .. } => "layer_norm",
        }
    }

    /// Output spatial size of a convolution/pool (`(hw + 2p - k)/s + 1`).
    fn out_hw(hw: i64, khw: i64, stride: i64, pad: i64) -> i64 {
        (hw + 2 * pad - khw) / stride + 1
    }

    /// The canonical loop nest: spatial loops first, then reductions.
    pub fn loops(&self) -> Vec<LoopSpec> {
        match *self {
            AnchorOp::Dense { m, n, k } => vec![
                LoopSpec::spatial("i", m),
                LoopSpec::spatial("j", n),
                LoopSpec::reduction("k", k),
            ],
            AnchorOp::BatchMatmul { b, m, n, k } => vec![
                LoopSpec::spatial("b", b),
                LoopSpec::spatial("i", m),
                LoopSpec::spatial("j", n),
                LoopSpec::reduction("k", k),
            ],
            AnchorOp::Conv2d {
                n,
                cin,
                hw,
                cout,
                khw,
                stride,
                pad,
                groups,
            } => {
                let ohw = Self::out_hw(hw, khw, stride, pad);
                let rc = cin / groups;
                let mut loops = vec![
                    LoopSpec::spatial("n", n),
                    LoopSpec::spatial("oc", cout),
                    LoopSpec::spatial("oh", ohw),
                    LoopSpec::spatial("ow", ohw),
                ];
                if rc > 1 {
                    loops.push(LoopSpec::reduction("ic", rc));
                }
                loops.push(LoopSpec::reduction("kh", khw));
                loops.push(LoopSpec::reduction("kw", khw));
                loops
            }
            AnchorOp::Pool {
                n,
                c,
                hw,
                khw,
                stride,
            } => {
                let ohw = Self::out_hw(hw, khw, stride, 0);
                vec![
                    LoopSpec::spatial("n", n),
                    LoopSpec::spatial("c", c),
                    LoopSpec::spatial("oh", ohw),
                    LoopSpec::spatial("ow", ohw),
                    LoopSpec::reduction("kh", khw),
                    LoopSpec::reduction("kw", khw),
                ]
            }
            AnchorOp::Softmax { rows, cols } | AnchorOp::LayerNorm { rows, cols } => {
                vec![LoopSpec::spatial("r", rows), LoopSpec::reduction("c", cols)]
            }
        }
    }

    /// Floating-point operations of one evaluation.
    pub fn flops(&self) -> f64 {
        match *self {
            AnchorOp::Dense { m, n, k } => 2.0 * m as f64 * n as f64 * k as f64,
            AnchorOp::BatchMatmul { b, m, n, k } => 2.0 * b as f64 * m as f64 * n as f64 * k as f64,
            AnchorOp::Conv2d {
                n,
                cin,
                hw,
                cout,
                khw,
                stride,
                pad,
                groups,
            } => {
                let ohw = Self::out_hw(hw, khw, stride, pad);
                2.0 * n as f64
                    * cout as f64
                    * (ohw * ohw) as f64
                    * (cin / groups) as f64
                    * (khw * khw) as f64
            }
            AnchorOp::Pool {
                n,
                c,
                hw,
                khw,
                stride,
            } => {
                let ohw = Self::out_hw(hw, khw, stride, 0);
                n as f64 * c as f64 * (ohw * ohw) as f64 * (khw * khw) as f64
            }
            AnchorOp::Softmax { rows, cols } => 5.0 * rows as f64 * cols as f64,
            AnchorOp::LayerNorm { rows, cols } => 8.0 * rows as f64 * cols as f64,
        }
    }

    /// Bytes read from inputs (f32 elements × 4).
    pub fn bytes_read(&self) -> f64 {
        let elems = match *self {
            AnchorOp::Dense { m, n, k } => (m * k + k * n) as f64,
            AnchorOp::BatchMatmul { b, m, n, k } => (b * (m * k + k * n)) as f64,
            AnchorOp::Conv2d {
                n,
                cin,
                hw,
                cout,
                khw,
                groups,
                ..
            } => (n * cin * hw * hw + cout * (cin / groups) * khw * khw) as f64,
            AnchorOp::Pool { n, c, hw, .. } => (n * c * hw * hw) as f64,
            AnchorOp::Softmax { rows, cols } | AnchorOp::LayerNorm { rows, cols } => {
                (rows * cols) as f64
            }
        };
        elems * 4.0
    }

    /// Bytes written to the output.
    pub fn bytes_written(&self) -> f64 {
        let elems: f64 = self
            .loops()
            .iter()
            .filter(|l| l.kind == LoopKind::Spatial)
            .map(|l| l.extent as f64)
            .product();
        elems * 4.0
    }
}

impl fmt::Display for AnchorOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name())?;
        for (i, l) in self.loops().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", l.name, l.extent)?;
        }
        write!(f, ")")
    }
}

/// An elementwise epilogue fused into a subgraph (ReLU, residual add,
/// folded batch-norm bias/scale…).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusedOp {
    /// Rectified linear unit.
    Relu,
    /// Sigmoid-weighted linear unit (Swish / SiLU family; also used for GELU).
    Gelu,
    /// Bias or folded-batch-norm addition.
    BiasAdd,
    /// Residual addition (reads a second input of output size).
    ResidualAdd,
}

impl FusedOp {
    /// FLOPs per output element.
    pub fn flops_per_elem(self) -> f64 {
        match self {
            FusedOp::Relu => 1.0,
            FusedOp::Gelu => 8.0,
            FusedOp::BiasAdd => 1.0,
            FusedOp::ResidualAdd => 1.0,
        }
    }

    /// Extra input bytes per output element.
    pub fn extra_bytes_per_elem(self) -> f64 {
        match self {
            FusedOp::ResidualAdd => 4.0,
            _ => 0.0,
        }
    }

    /// Stage name used in schedule primitives.
    pub fn stage_name(self) -> &'static str {
        match self {
            FusedOp::Relu => "relu",
            FusedOp::Gelu => "gelu",
            FusedOp::BiasAdd => "bias_add",
            FusedOp::ResidualAdd => "add",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_loops_and_flops() {
        let op = AnchorOp::Dense {
            m: 64,
            n: 128,
            k: 256,
        };
        let loops = op.loops();
        assert_eq!(loops.len(), 3);
        assert_eq!(loops[2].kind, LoopKind::Reduction);
        assert_eq!(op.flops(), 2.0 * 64.0 * 128.0 * 256.0);
        assert_eq!(op.bytes_written(), 64.0 * 128.0 * 4.0);
    }

    #[test]
    fn conv_output_size() {
        let op = AnchorOp::Conv2d {
            n: 1,
            cin: 3,
            hw: 224,
            cout: 64,
            khw: 7,
            stride: 2,
            pad: 3,
            groups: 1,
        };
        let loops = op.loops();
        let oh = loops.iter().find(|l| l.name == "oh").unwrap();
        assert_eq!(oh.extent, 112);
    }

    #[test]
    fn depthwise_has_no_channel_reduction() {
        let op = AnchorOp::Conv2d {
            n: 1,
            cin: 32,
            hw: 112,
            cout: 32,
            khw: 3,
            stride: 1,
            pad: 1,
            groups: 32,
        };
        assert_eq!(op.name(), "depthwise_conv2d");
        assert!(op.loops().iter().all(|l| l.name != "ic"));
    }

    #[test]
    fn group_conv_reduces_flops() {
        let dense = AnchorOp::Conv2d {
            n: 1,
            cin: 128,
            hw: 56,
            cout: 128,
            khw: 3,
            stride: 1,
            pad: 1,
            groups: 1,
        };
        let grouped = AnchorOp::Conv2d {
            n: 1,
            cin: 128,
            hw: 56,
            cout: 128,
            khw: 3,
            stride: 1,
            pad: 1,
            groups: 32,
        };
        assert!((dense.flops() / grouped.flops() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let op = AnchorOp::Dense { m: 8, n: 16, k: 32 };
        assert_eq!(op.to_string(), "dense(i=8, j=16, k=32)");
    }
}
