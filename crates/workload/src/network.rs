//! Deep-learning workload builders.
//!
//! The paper's held-out test set (§6.1) is ResNet-50, MobileNet-V2,
//! ResNeXt-50, BERT-tiny and BERT-base at batch size 1 (image 224 /
//! sequence length 128). Training data comes from a pool of other networks
//! (TenSet collected ~120; we build a parametric pool of the same families).

use crate::op::{AnchorOp, FusedOp};
use crate::subgraph::{Subgraph, SubgraphInstance};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A deep-learning workload as a bag of subgraph tuning tasks with weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Network name, e.g. `resnet-50`.
    pub name: String,
    /// The distinct subgraphs and their occurrence counts.
    pub instances: Vec<SubgraphInstance>,
}

impl Network {
    /// Total number of distinct subgraphs (tuning tasks).
    pub fn num_tasks(&self) -> usize {
        self.instances.len()
    }

    /// Total weighted FLOPs of one inference pass.
    pub fn total_flops(&self) -> f64 {
        self.instances
            .iter()
            .map(|i| i.subgraph.flops() * i.weight as f64)
            .sum()
    }
}

/// Accumulates subgraphs, merging duplicates into weights.
#[derive(Debug, Default)]
struct NetBuilder {
    order: Vec<u64>,
    by_key: HashMap<u64, SubgraphInstance>,
}

impl NetBuilder {
    fn add(&mut self, sg: Subgraph) {
        let key = sg.key();
        match self.by_key.get_mut(&key) {
            Some(inst) => inst.weight += 1,
            None => {
                self.order.push(key);
                self.by_key.insert(
                    key,
                    SubgraphInstance {
                        subgraph: sg,
                        weight: 1,
                    },
                );
            }
        }
    }

    fn build(mut self, name: &str) -> Network {
        let instances = self
            .order
            .iter()
            .map(|k| self.by_key.remove(k).expect("key present"))
            .collect();
        Network {
            name: name.to_string(),
            instances,
        }
    }
}

fn conv(n: i64, cin: i64, hw: i64, cout: i64, khw: i64, stride: i64, pad: i64) -> AnchorOp {
    AnchorOp::Conv2d {
        n,
        cin,
        hw,
        cout,
        khw,
        stride,
        pad,
        groups: 1,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the AnchorOp::Conv2d field list
fn gconv(
    n: i64,
    cin: i64,
    hw: i64,
    cout: i64,
    khw: i64,
    stride: i64,
    pad: i64,
    groups: i64,
) -> AnchorOp {
    AnchorOp::Conv2d {
        n,
        cin,
        hw,
        cout,
        khw,
        stride,
        pad,
        groups,
    }
}

/// ResNet-style network with bottleneck blocks.
///
/// `blocks` gives the number of bottlenecks per stage; `width` scales the
/// base channel count (64 for standard ResNet-50); `groups`/`group_width`
/// select the ResNeXt variant.
fn resnet_like(
    name: &str,
    batch: i64,
    image: i64,
    blocks: [usize; 4],
    width: i64,
    groups: i64,
) -> Network {
    let mut b = NetBuilder::default();
    // Stem.
    b.add(
        Subgraph::new("stem", conv(batch, 3, image, width, 7, 2, 3))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    b.add(Subgraph::new(
        "stem_pool",
        AnchorOp::Pool {
            n: batch,
            c: width,
            hw: image / 2,
            khw: 3,
            stride: 2,
        },
    ));
    let mut hw = image / 4;
    let mut cin = width;
    for (stage, &nblocks) in blocks.iter().enumerate() {
        let mid = width * (1 << stage); // 64,128,256,512 at width=64
        let cout = mid * 4;
        for blk in 0..nblocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            if stride == 2 {
                hw /= 2;
            }
            let in_hw = if stride == 2 { hw * 2 } else { hw };
            // 1x1 reduce.
            b.add(
                Subgraph::new(
                    format!("s{stage}b{blk}_reduce"),
                    conv(batch, cin, in_hw, mid, 1, 1, 0),
                )
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
            );
            // 3x3 (possibly grouped for ResNeXt).
            b.add(
                Subgraph::new(
                    format!("s{stage}b{blk}_conv3"),
                    gconv(batch, mid, in_hw, mid, 3, stride, 1, groups),
                )
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
            );
            // 1x1 expand with residual add.
            b.add(
                Subgraph::new(
                    format!("s{stage}b{blk}_expand"),
                    conv(batch, mid, hw, cout, 1, 1, 0),
                )
                .with_fused([
                    FusedOp::BiasAdd,
                    FusedOp::ResidualAdd,
                    FusedOp::Relu,
                ]),
            );
            if blk == 0 {
                // Projection shortcut.
                b.add(
                    Subgraph::new(
                        format!("s{stage}b{blk}_proj"),
                        conv(batch, cin, in_hw, cout, 1, stride, 0),
                    )
                    .with_fused([FusedOp::BiasAdd]),
                );
            }
            cin = cout;
        }
    }
    // Global pool + classifier.
    b.add(Subgraph::new(
        "global_pool",
        AnchorOp::Pool {
            n: batch,
            c: cin,
            hw,
            khw: hw,
            stride: hw,
        },
    ));
    b.add(
        Subgraph::new(
            "classifier",
            AnchorOp::Dense {
                m: batch,
                n: 1000,
                k: cin,
            },
        )
        .with_fused([FusedOp::BiasAdd]),
    );
    b.build(name)
}

/// ResNet-50 at the paper's test configuration.
pub fn resnet50(batch: i64, image: i64) -> Network {
    resnet_like("resnet-50", batch, image, [3, 4, 6, 3], 64, 1)
}

/// ResNeXt-50 (32×4d): ResNet-50 with 32-group 3×3 convolutions.
pub fn resnext50(batch: i64, image: i64) -> Network {
    resnet_like("resnext-50", batch, image, [3, 4, 6, 3], 64, 32)
}

/// MobileNet-V2 with inverted-residual blocks.
pub fn mobilenet_v2(batch: i64, image: i64) -> Network {
    let mut b = NetBuilder::default();
    b.add(
        Subgraph::new("stem", conv(batch, 3, image, 32, 3, 2, 1))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    // (expansion, out channels, repeats, stride)
    let cfg: [(i64, i64, usize, i64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cin = 32i64;
    let mut hw = image / 2;
    for (t, cout, reps, first_stride) in cfg {
        for r in 0..reps {
            let stride = if r == 0 { first_stride } else { 1 };
            let mid = cin * t;
            if t != 1 {
                b.add(
                    Subgraph::new("expand", conv(batch, cin, hw, mid, 1, 1, 0))
                        .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
                );
            }
            let in_hw = hw;
            if stride == 2 {
                hw /= 2;
            }
            b.add(
                Subgraph::new(
                    "depthwise",
                    gconv(batch, mid, in_hw, mid, 3, stride, 1, mid),
                )
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
            );
            let mut proj = Subgraph::new("project", conv(batch, mid, hw, cout, 1, 1, 0))
                .with_fused([FusedOp::BiasAdd]);
            if stride == 1 && cin == cout {
                proj = proj.with_fused([FusedOp::ResidualAdd]);
            }
            b.add(proj);
            cin = cout;
        }
    }
    b.add(
        Subgraph::new("head", conv(batch, cin, hw, 1280, 1, 1, 0))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    b.add(Subgraph::new(
        "global_pool",
        AnchorOp::Pool {
            n: batch,
            c: 1280,
            hw,
            khw: hw,
            stride: hw,
        },
    ));
    b.add(
        Subgraph::new(
            "classifier",
            AnchorOp::Dense {
                m: batch,
                n: 1000,
                k: 1280,
            },
        )
        .with_fused([FusedOp::BiasAdd]),
    );
    b.build("mobilenet-v2")
}

/// BERT-style transformer encoder.
///
/// `layers` encoder blocks of hidden size `hidden` with `heads` attention
/// heads over sequence length `seq`.
pub fn bert(name: &str, batch: i64, seq: i64, layers: usize, hidden: i64, heads: i64) -> Network {
    let mut b = NetBuilder::default();
    let m = batch * seq;
    let dh = hidden / heads;
    for _ in 0..layers {
        // Q, K, V projections (three identical dense ops → weight 3).
        for _ in 0..3 {
            b.add(
                Subgraph::new(
                    "qkv_proj",
                    AnchorOp::Dense {
                        m,
                        n: hidden,
                        k: hidden,
                    },
                )
                .with_fused([FusedOp::BiasAdd]),
            );
        }
        // Attention scores and context.
        b.add(Subgraph::new(
            "attn_scores",
            AnchorOp::BatchMatmul {
                b: batch * heads,
                m: seq,
                n: seq,
                k: dh,
            },
        ));
        b.add(Subgraph::new(
            "attn_softmax",
            AnchorOp::Softmax {
                rows: batch * heads * seq,
                cols: seq,
            },
        ));
        b.add(Subgraph::new(
            "attn_context",
            AnchorOp::BatchMatmul {
                b: batch * heads,
                m: seq,
                n: dh,
                k: seq,
            },
        ));
        // Output projection + residual + layernorm.
        b.add(
            Subgraph::new(
                "attn_out",
                AnchorOp::Dense {
                    m,
                    n: hidden,
                    k: hidden,
                },
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::ResidualAdd]),
        );
        b.add(Subgraph::new(
            "ln1",
            AnchorOp::LayerNorm {
                rows: m,
                cols: hidden,
            },
        ));
        // Feed-forward.
        b.add(
            Subgraph::new(
                "ffn_up",
                AnchorOp::Dense {
                    m,
                    n: hidden * 4,
                    k: hidden,
                },
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::Gelu]),
        );
        b.add(
            Subgraph::new(
                "ffn_down",
                AnchorOp::Dense {
                    m,
                    n: hidden,
                    k: hidden * 4,
                },
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::ResidualAdd]),
        );
        b.add(Subgraph::new(
            "ln2",
            AnchorOp::LayerNorm {
                rows: m,
                cols: hidden,
            },
        ));
    }
    b.build(name)
}

/// BERT-tiny (2 layers, hidden 128, 2 heads).
pub fn bert_tiny(batch: i64, seq: i64) -> Network {
    bert("bert-tiny", batch, seq, 2, 128, 2)
}

/// BERT-base (12 layers, hidden 768, 12 heads).
pub fn bert_base(batch: i64, seq: i64) -> Network {
    bert("bert-base", batch, seq, 12, 768, 12)
}

/// The paper's five held-out evaluation networks at batch 1, image 224 /
/// sequence 128 (§6.1).
pub fn test_networks() -> Vec<Network> {
    vec![
        resnet50(1, 224),
        mobilenet_v2(1, 224),
        resnext50(1, 224),
        bert_tiny(1, 128),
        bert_base(1, 128),
    ]
}

/// VGG-style plain convolutional network (training pool).
fn vgg_like(name: &str, batch: i64, image: i64, widths: &[i64]) -> Network {
    let mut b = NetBuilder::default();
    let mut cin = 3i64;
    let mut hw = image;
    for (i, &w) in widths.iter().enumerate() {
        b.add(
            Subgraph::new(format!("conv{i}"), conv(batch, cin, hw, w, 3, 1, 1))
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        b.add(Subgraph::new(
            format!("pool{i}"),
            AnchorOp::Pool {
                n: batch,
                c: w,
                hw,
                khw: 2,
                stride: 2,
            },
        ));
        cin = w;
        hw /= 2;
    }
    b.add(
        Subgraph::new(
            "fc",
            AnchorOp::Dense {
                m: batch,
                n: 4096,
                k: cin * hw * hw,
            },
        )
        .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    b.add(
        Subgraph::new(
            "classifier",
            AnchorOp::Dense {
                m: batch,
                n: 1000,
                k: 4096,
            },
        )
        .with_fused([FusedOp::BiasAdd]),
    );
    b.build(name)
}

/// MobileNet-V1-style depthwise-separable network (training pool).
fn mobilenet_v1(batch: i64, image: i64, mult: f64) -> Network {
    let mut b = NetBuilder::default();
    let ch = |c: i64| ((c as f64 * mult) as i64).max(8);
    b.add(
        Subgraph::new("stem", conv(batch, 3, image, ch(32), 3, 2, 1))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    let cfg: [(i64, i64); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    let mut cin = ch(32);
    let mut hw = image / 2;
    for (cout, stride) in cfg {
        let in_hw = hw;
        if stride == 2 {
            hw /= 2;
        }
        b.add(
            Subgraph::new("dw", gconv(batch, cin, in_hw, cin, 3, stride, 1, cin))
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        b.add(
            Subgraph::new("pw", conv(batch, cin, hw, ch(cout), 1, 1, 0))
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        cin = ch(cout);
    }
    b.add(
        Subgraph::new(
            "classifier",
            AnchorOp::Dense {
                m: batch,
                n: 1000,
                k: cin,
            },
        )
        .with_fused([FusedOp::BiasAdd]),
    );
    b.build(&format!("mobilenet-v1-x{mult}"))
}

/// Inception-style mixed-kernel network (training pool).
fn inception_like(name: &str, batch: i64, image: i64) -> Network {
    let mut b = NetBuilder::default();
    b.add(
        Subgraph::new("stem", conv(batch, 3, image, 64, 7, 2, 3))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    let mut hw = image / 4;
    let mut cin = 64i64;
    for stage in 0..3 {
        // Parallel 1x1 / 3x3 / 5x5 branches, concatenated channel-wise.
        let c1 = 32 << stage;
        b.add(
            Subgraph::new(format!("s{stage}_b1"), conv(batch, cin, hw, c1, 1, 1, 0))
                .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        b.add(
            Subgraph::new(
                format!("s{stage}_b3"),
                conv(batch, cin, hw, c1 * 2, 3, 1, 1),
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        b.add(
            Subgraph::new(
                format!("s{stage}_b5"),
                conv(batch, cin, hw, c1 / 2, 5, 1, 2),
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        cin = c1 + c1 * 2 + c1 / 2;
        b.add(Subgraph::new(
            format!("s{stage}_pool"),
            AnchorOp::Pool {
                n: batch,
                c: cin,
                hw,
                khw: 3,
                stride: 2,
            },
        ));
        hw = (hw - 3) / 2 + 1;
    }
    b.add(
        Subgraph::new(
            "classifier",
            AnchorOp::Dense {
                m: batch,
                n: 1000,
                k: cin,
            },
        )
        .with_fused([FusedOp::BiasAdd]),
    );
    b.build(name)
}

/// SqueezeNet-style fire modules (squeeze 1x1, expand 1x1 + 3x3).
fn squeezenet_like(name: &str, batch: i64, image: i64) -> Network {
    let mut b = NetBuilder::default();
    b.add(
        Subgraph::new("stem", conv(batch, 3, image, 96, 7, 2, 3))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    let mut hw = image / 2;
    let mut cin = 96i64;
    for (i, (squeeze, expand)) in [(16i64, 64i64), (32, 128), (48, 192), (64, 256)]
        .into_iter()
        .enumerate()
    {
        if i % 2 == 0 {
            b.add(Subgraph::new(
                format!("pool{i}"),
                AnchorOp::Pool {
                    n: batch,
                    c: cin,
                    hw,
                    khw: 3,
                    stride: 2,
                },
            ));
            hw = (hw - 3) / 2 + 1;
        }
        b.add(
            Subgraph::new(
                format!("fire{i}_squeeze"),
                conv(batch, cin, hw, squeeze, 1, 1, 0),
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        b.add(
            Subgraph::new(
                format!("fire{i}_e1"),
                conv(batch, squeeze, hw, expand, 1, 1, 0),
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        b.add(
            Subgraph::new(
                format!("fire{i}_e3"),
                conv(batch, squeeze, hw, expand, 3, 1, 1),
            )
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
        );
        cin = expand * 2;
    }
    b.add(
        Subgraph::new("head", conv(batch, cin, hw, 1000, 1, 1, 0))
            .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
    );
    b.build(name)
}

/// The training pool: network families similar to (but distinct from) the
/// held-out test set, across several batch sizes and input resolutions.
///
/// TenSet used 120 networks; this pool is a scaled-down analogue with the
/// same family coverage (ResNets, VGG, MobileNets, transformers, MLPs).
pub fn training_networks() -> Vec<Network> {
    // Ordered so that any truncated prefix spans every family (ResNet, VGG,
    // MobileNet, transformer): reduced-scale runs cap the pool length and
    // still need training coverage for all five test-network families.
    let mut nets = vec![
        resnet_like("resnet-18ish", 1, 224, [2, 2, 2, 2], 64, 1),
        bert("bert-small", 1, 128, 4, 256, 4),
        mobilenet_v1(1, 224, 1.0),
        vgg_like("vgg-11ish", 1, 224, &[64, 128, 256, 512, 512]),
        resnet_like("resnet-26-g8", 1, 224, [2, 2, 2, 2], 64, 8),
        bert("bert-medium", 1, 128, 8, 512, 8),
        mobilenet_v1(1, 224, 0.5),
        resnet_like("resnet-34ish", 1, 224, [3, 4, 6, 3], 48, 1),
        bert("gpt2-ish", 1, 256, 6, 384, 6),
        mobilenet_v1(1, 192, 0.75),
        resnet_like("wide-resnet", 1, 224, [2, 2, 2, 2], 96, 1),
        bert("bert-seq64", 1, 64, 4, 512, 8),
        vgg_like("vgg-thin", 1, 224, &[32, 64, 128, 256, 256]),
        resnet_like("resnet-small-192", 1, 192, [2, 2, 2, 2], 64, 1),
        bert("bert-batch4", 4, 128, 2, 256, 4),
        resnet_like("resnet-batch4", 4, 224, [2, 2, 2, 2], 64, 1),
    ];
    // Wider-coverage families used at medium/paper scales (appended so the
    // reduced-scale prefix above stays stable).
    nets.push(inception_like("inception-ish", 1, 224));
    nets.push(squeezenet_like("squeezenet-ish", 1, 224));
    nets.push(resnet_like("resnet-50-b8", 8, 224, [3, 4, 6, 3], 64, 1));
    nets.push(bert("bert-seq256", 1, 256, 4, 256, 4));
    nets.push(mobilenet_v1(1, 160, 1.0));
    // MLP nets with assorted widths.
    for (i, w) in [256i64, 512, 1024, 2048].into_iter().enumerate() {
        let mut b = NetBuilder::default();
        for l in 0..4 {
            b.add(
                Subgraph::new(format!("fc{l}"), AnchorOp::Dense { m: 16, n: w, k: w })
                    .with_fused([FusedOp::BiasAdd, FusedOp::Relu]),
            );
        }
        nets.push(b.build(&format!("mlp-{i}")));
    }
    nets
}

/// Deduplicates subgraphs across networks, summing weights.
pub fn distinct_subgraphs(networks: &[Network]) -> Vec<SubgraphInstance> {
    let mut order = Vec::new();
    let mut map: HashMap<u64, SubgraphInstance> = HashMap::new();
    for net in networks {
        for inst in &net.instances {
            let key = inst.subgraph.key();
            match map.get_mut(&key) {
                Some(existing) => existing.weight += inst.weight,
                None => {
                    order.push(key);
                    map.insert(key, inst.clone());
                }
            }
        }
    }
    order
        .into_iter()
        .map(|k| map.remove(&k).expect("key present"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_networks_are_the_papers_five() {
        let nets = test_networks();
        let names: Vec<&str> = nets.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "resnet-50",
                "mobilenet-v2",
                "resnext-50",
                "bert-tiny",
                "bert-base"
            ]
        );
    }

    #[test]
    fn resnet50_task_count_and_flops() {
        let net = resnet50(1, 224);
        // Distinct tuning tasks: dozens, not hundreds (dedup works).
        assert!(
            net.num_tasks() > 20 && net.num_tasks() < 80,
            "{}",
            net.num_tasks()
        );
        // ~4 GFLOPs plus epilogues/projections for one 224x224 inference.
        let gflops = net.total_flops() / 1e9;
        assert!(gflops > 3.0 && gflops < 10.0, "got {gflops} GFLOPs");
    }

    #[test]
    fn weights_count_repeats() {
        let net = bert_base(1, 128);
        let qkv = net
            .instances
            .iter()
            .find(|i| i.subgraph.name == "qkv_proj")
            .expect("qkv task");
        // 3 projections × 12 layers share one task.
        assert_eq!(qkv.weight, 36);
    }

    #[test]
    fn resnext_differs_from_resnet_in_group_conv() {
        let rn = resnet50(1, 224);
        let rx = resnext50(1, 224);
        assert!(rx.total_flops() < rn.total_flops());
        let grouped = rx
            .instances
            .iter()
            .any(|i| i.subgraph.anchor.name() == "group_conv2d");
        assert!(grouped);
    }

    #[test]
    fn mobilenet_has_depthwise() {
        let net = mobilenet_v2(1, 224);
        assert!(net
            .instances
            .iter()
            .any(|i| i.subgraph.anchor.name() == "depthwise_conv2d"));
        // MobileNet-V2 is ~0.3 GFLOPs.
        let gflops = net.total_flops() / 1e9;
        assert!(gflops > 0.15 && gflops < 1.5, "got {gflops}");
    }

    #[test]
    fn training_pool_is_disjoint_scale() {
        let pool = training_networks();
        assert!(pool.len() >= 15);
        let total: usize = pool.iter().map(Network::num_tasks).sum();
        assert!(total > 150, "want a rich pool, got {total} tasks");
        // The pool must not contain the exact held-out networks.
        for n in &pool {
            assert!(![
                "resnet-50",
                "mobilenet-v2",
                "resnext-50",
                "bert-tiny",
                "bert-base"
            ]
            .contains(&n.name.as_str()));
        }
    }

    #[test]
    fn distinct_subgraphs_dedups_across_networks() {
        let nets = vec![bert_tiny(1, 128), bert_tiny(1, 128)];
        let distinct = distinct_subgraphs(&nets);
        let single = distinct_subgraphs(&nets[..1]);
        assert_eq!(distinct.len(), single.len());
        assert_eq!(
            distinct.iter().map(|i| i.weight).sum::<usize>(),
            2 * single.iter().map(|i| i.weight).sum::<usize>()
        );
    }
}
