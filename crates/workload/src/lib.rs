//! `tlp-workload` — deep-learning workloads, operators and computational
//! subgraphs for the TLP (ASPLOS 2023) reproduction.
//!
//! A workload ([`Network`]) is partitioned into computational subgraphs
//! ([`Subgraph`]), each an anchor operator ([`AnchorOp`]) plus fused
//! elementwise epilogues ([`FusedOp`]). Subgraphs are the unit the
//! auto-scheduler tunes; their loop nests ([`LoopSpec`]) define the schedule
//! search space.
//!
//! The paper's five held-out evaluation networks are built by
//! [`test_networks`]; the offline-dataset pool by [`training_networks`].
//!
//! # Example
//!
//! ```
//! use tlp_workload::resnet50;
//! let net = resnet50(1, 224);
//! assert_eq!(net.name, "resnet-50");
//! assert!(net.total_flops() > 3e9);
//! ```

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)
#![allow(clippy::disallowed_types)] // keyed lookups only; determinism-critical crates opt in (clippy.toml)
#![warn(missing_docs)]

pub mod network;
pub mod op;
pub mod subgraph;

pub use network::{
    bert, bert_base, bert_tiny, distinct_subgraphs, mobilenet_v2, resnet50, resnext50,
    test_networks, training_networks, Network,
};
pub use op::{AnchorOp, FusedOp, LoopKind, LoopSpec};
pub use subgraph::{Subgraph, SubgraphInstance};
