//! Computational subgraphs — the unit of auto-scheduling.

use crate::op::{AnchorOp, FusedOp, LoopKind, LoopSpec};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// A fused computational subgraph: one anchor operator plus elementwise
/// epilogues, as produced by a compiler's graph partitioner.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subgraph {
    /// Human-readable name, e.g. `conv2d_64x56_k3`.
    pub name: String,
    /// The dominant compute operator.
    pub anchor: AnchorOp,
    /// Fused elementwise stages, in application order.
    pub fused: Vec<FusedOp>,
}

impl Subgraph {
    /// Creates a subgraph around an anchor operator.
    pub fn new(name: impl Into<String>, anchor: AnchorOp) -> Self {
        Subgraph {
            name: name.into(),
            anchor,
            fused: Vec::new(),
        }
    }

    /// Builder-style: appends fused elementwise stages.
    pub fn with_fused(mut self, fused: impl IntoIterator<Item = FusedOp>) -> Self {
        self.fused.extend(fused);
        self
    }

    /// The anchor's loop nest.
    pub fn loops(&self) -> Vec<LoopSpec> {
        self.anchor.loops()
    }

    /// Spatial loops only.
    pub fn spatial_loops(&self) -> Vec<LoopSpec> {
        self.loops()
            .into_iter()
            .filter(|l| l.kind == LoopKind::Spatial)
            .collect()
    }

    /// Reduction loops only.
    pub fn reduction_loops(&self) -> Vec<LoopSpec> {
        self.loops()
            .into_iter()
            .filter(|l| l.kind == LoopKind::Reduction)
            .collect()
    }

    /// Number of output elements.
    pub fn output_elems(&self) -> f64 {
        self.spatial_loops()
            .iter()
            .map(|l| l.extent as f64)
            .product()
    }

    /// Total floating-point operations (anchor + fused stages).
    pub fn flops(&self) -> f64 {
        let out = self.output_elems();
        self.anchor.flops()
            + self
                .fused
                .iter()
                .map(|f| f.flops_per_elem() * out)
                .sum::<f64>()
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> f64 {
        let out = self.output_elems();
        self.anchor.bytes_read()
            + self
                .fused
                .iter()
                .map(|f| f.extra_bytes_per_elem() * out)
                .sum::<f64>()
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> f64 {
        self.anchor.bytes_written()
    }

    /// Arithmetic intensity (FLOPs per byte moved).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / (self.bytes_read() + self.bytes_written()).max(1.0)
    }

    /// A stable identity key: equal keys mean the same tuning task.
    pub fn key(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.anchor.hash(&mut h);
        self.fused.hash(&mut h);
        h.finish()
    }
}

/// A subgraph instance inside a network, with its occurrence count
/// (the paper's `weight_{m,s}`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubgraphInstance {
    /// The subgraph.
    pub subgraph: Subgraph,
    /// How many times it appears in the network.
    pub weight: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg() -> Subgraph {
        Subgraph::new(
            "dense_relu",
            AnchorOp::Dense {
                m: 128,
                n: 128,
                k: 512,
            },
        )
        .with_fused([FusedOp::BiasAdd, FusedOp::Relu])
    }

    #[test]
    fn fused_ops_add_flops() {
        let bare = Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 128,
                n: 128,
                k: 512,
            },
        );
        let fused = sg();
        assert!(fused.flops() > bare.flops());
        assert_eq!(
            fused.flops() - bare.flops(),
            2.0 * 128.0 * 128.0 // bias (1) + relu (1) per output element
        );
    }

    #[test]
    fn key_ignores_name_but_not_structure() {
        let a = sg();
        let mut b = sg();
        b.name = "renamed".into();
        assert_eq!(a.key(), b.key());
        let c = Subgraph::new(
            "other",
            AnchorOp::Dense {
                m: 128,
                n: 128,
                k: 256,
            },
        );
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn loop_partition() {
        let s = sg();
        assert_eq!(s.spatial_loops().len(), 2);
        assert_eq!(s.reduction_loops().len(), 1);
        assert_eq!(s.output_elems(), 128.0 * 128.0);
    }

    #[test]
    fn residual_add_reads_extra_bytes() {
        let plain = sg();
        let res = sg().with_fused([FusedOp::ResidualAdd]);
        assert!(res.bytes_read() > plain.bytes_read());
    }
}
