//! Structural invariants of the workload library's networks.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)
#![allow(clippy::disallowed_types)] // keyed lookups only; determinism-critical crates opt in (clippy.toml)

use tlp_workload::{
    bert, bert_base, bert_tiny, distinct_subgraphs, mobilenet_v2, resnet50, resnext50,
    test_networks, training_networks, LoopKind,
};

#[test]
fn all_networks_have_positive_work() {
    let mut nets = training_networks();
    nets.extend(test_networks());
    for net in &nets {
        assert!(net.num_tasks() > 0, "{} has no tasks", net.name);
        assert!(net.total_flops() > 0.0, "{} has no flops", net.name);
        for inst in &net.instances {
            assert!(inst.weight >= 1);
            let sg = &inst.subgraph;
            assert!(sg.flops() > 0.0, "{}/{}", net.name, sg.name);
            assert!(sg.bytes_read() > 0.0);
            assert!(sg.bytes_written() > 0.0);
            assert!(!sg.spatial_loops().is_empty(), "{}/{}", net.name, sg.name);
            for l in sg.loops() {
                assert!(l.extent >= 1, "{}/{} loop {}", net.name, sg.name, l.name);
            }
        }
    }
}

#[test]
fn loop_extents_consistent_with_output_elems() {
    for net in test_networks() {
        for inst in &net.instances {
            let sg = &inst.subgraph;
            let spatial_product: f64 = sg
                .loops()
                .iter()
                .filter(|l| l.kind == LoopKind::Spatial)
                .map(|l| l.extent as f64)
                .product();
            assert_eq!(spatial_product, sg.output_elems());
        }
    }
}

#[test]
fn bert_flops_scale_superlinearly_with_hidden() {
    let small = bert("a", 1, 128, 4, 256, 4);
    let big = bert("b", 1, 128, 4, 512, 8);
    // Dense layers are O(hidden²): 2× hidden → ~4× flops.
    let ratio = big.total_flops() / small.total_flops();
    assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
}

#[test]
fn batch_scales_flops_linearly() {
    let b1 = bert_tiny(1, 128);
    let b4 = bert("bert-tiny-b4", 4, 128, 2, 128, 2);
    let ratio = b4.total_flops() / b1.total_flops();
    assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio}");
}

#[test]
fn paper_flop_counts_are_plausible() {
    // Published MACs: ResNet-50 ≈ 4.1 G, MobileNet-V2 ≈ 0.3 G,
    // ResNeXt-50 ≈ 4.2 G, BERT-base ≈ 22.5 G (seq 128, with epilogues).
    let within = |x: f64, lo: f64, hi: f64| x > lo && x < hi;
    assert!(within(resnet50(1, 224).total_flops() / 2e9, 3.0, 6.0));
    assert!(within(mobilenet_v2(1, 224).total_flops() / 2e9, 0.1, 0.6));
    assert!(within(resnext50(1, 224).total_flops() / 2e9, 2.0, 5.0));
    assert!(within(bert_base(1, 128).total_flops() / 2e9, 8.0, 30.0));
}

#[test]
fn distinct_subgraph_weights_conserve_instances() {
    let nets = test_networks();
    let total_weight: usize = nets
        .iter()
        .flat_map(|n| n.instances.iter())
        .map(|i| i.weight)
        .sum();
    let distinct = distinct_subgraphs(&nets);
    let distinct_weight: usize = distinct.iter().map(|i| i.weight).sum();
    assert_eq!(total_weight, distinct_weight);
    assert!(distinct.len() < nets.iter().map(|n| n.num_tasks()).sum());
}

#[test]
fn training_pool_prefixes_span_families() {
    // Reduced-scale runs truncate the pool; every 4-network prefix must
    // contain at least three distinct anchor families.
    let pool = training_networks();
    let family = |name: &str| -> &'static str {
        if name.contains("bert") || name.contains("gpt") {
            "transformer"
        } else if name.contains("mobilenet") {
            "mobilenet"
        } else if name.contains("vgg") {
            "vgg"
        } else {
            "resnet"
        }
    };
    let prefix: std::collections::HashSet<&str> =
        pool[..4].iter().map(|n| family(&n.name)).collect();
    assert!(prefix.len() >= 3, "prefix families {prefix:?}");
}
