//! Behavioural invariants of the hardware simulator across platforms and
//! schedules.

#![allow(clippy::disallowed_methods)] // unwrap/expect gate covers schedule, hwsim, serve (see clippy.toml)
#![allow(clippy::disallowed_types)] // keyed lookups only; determinism-critical crates opt in (clippy.toml)

use tlp_hwsim::{lower, Platform, Simulator};
use tlp_schedule::{ConcretePrimitive, PrimitiveKind, ScheduleSequence};
use tlp_workload::{AnchorOp, Subgraph};

fn dense(m: i64, n: i64, k: i64) -> Subgraph {
    Subgraph::new("d", AnchorOp::Dense { m, n, k })
}

/// A parameterized well-formed CPU schedule for a dense subgraph.
fn cpu_schedule(
    sg: &Subgraph,
    fi: [i64; 3],
    fj: [i64; 3],
    fk: i64,
    unroll: i64,
) -> ScheduleSequence {
    let loops = sg.loops();
    let (m, n, k) = (loops[0].extent, loops[1].extent, loops[2].extent);
    let mut prims = vec![
        ConcretePrimitive::new(PrimitiveKind::Split, "dense")
            .with_loops(["i"])
            .with_ints([m, fi[0], fi[1], fi[2]]),
        ConcretePrimitive::new(PrimitiveKind::Split, "dense")
            .with_loops(["j"])
            .with_ints([n, fj[0], fj[1], fj[2]]),
        ConcretePrimitive::new(PrimitiveKind::Split, "dense")
            .with_loops(["k"])
            .with_ints([k, fk]),
        ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.0", "j.0"]),
        ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
            .with_loops(["i.0@j.0"])
            .with_extras(["parallel"]),
        ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
            .with_loops(["j.3"])
            .with_extras(["vectorize"]),
        ConcretePrimitive::new(PrimitiveKind::CacheWrite, "dense"),
    ];
    if unroll > 0 {
        prims.push(
            ConcretePrimitive::new(PrimitiveKind::Pragma, "dense")
                .with_ints([unroll])
                .with_extras(["auto_unroll_max_step"]),
        );
    }
    prims.into_iter().collect()
}

fn latency(p: &Platform, sg: &Subgraph, seq: &ScheduleSequence) -> f64 {
    let spec = lower(sg, seq).expect("lowers");
    Simulator::new().latency(p, sg, &spec, seq.fingerprint())
}

#[test]
fn bigger_problems_take_longer() {
    let p = Platform::e5_2673();
    let small = dense(128, 128, 128);
    let large = dense(512, 512, 512);
    let seq_s = cpu_schedule(&small, [2, 2, 8], [2, 2, 16], 16, 64);
    let seq_l = cpu_schedule(&large, [2, 2, 8], [2, 2, 16], 16, 64);
    assert!(latency(&p, &large, &seq_l) > latency(&p, &small, &seq_s));
}

#[test]
fn good_schedule_scales_with_core_count() {
    // Same ISA, same frequency class, different core counts: the 16-core
    // 8272 must beat the 4-core EPYC on a well-parallelized kernel.
    let sg = dense(1024, 1024, 256);
    let seq = cpu_schedule(&sg, [4, 2, 8], [4, 2, 16], 16, 64);
    let many = latency(&Platform::platinum_8272(), &sg, &seq);
    let few = latency(&Platform::epyc_7452(), &sg, &seq);
    assert!(many * 2.0 < few, "16-core {many} vs 4-core {few}");
}

#[test]
fn unroll_preference_changes_ranking_between_platforms() {
    // The quirk: platforms prefer different auto_unroll_max_step values, so
    // the same pair of schedules can rank differently across platforms.
    let sg = dense(256, 256, 256);
    let steps = [16i64, 64, 512];
    let mut rank_signatures = std::collections::HashSet::new();
    for p in Platform::all_cpus() {
        let mut lats: Vec<(i64, f64)> = steps
            .iter()
            .map(|&u| {
                let seq = cpu_schedule(&sg, [2, 2, 8], [2, 2, 16], 16, u);
                (u, latency(&p, &sg, &seq))
            })
            .collect();
        lats.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let sig: Vec<i64> = lats.iter().map(|&(u, _)| u).collect();
        rank_signatures.insert(sig);
    }
    assert!(
        rank_signatures.len() >= 2,
        "all platforms agree on unroll ranking — quirk not effective"
    );
}

#[test]
fn memory_bound_op_insensitive_to_reduction_tiling() {
    let sg = Subgraph::new(
        "s",
        AnchorOp::Softmax {
            rows: 4096,
            cols: 512,
        },
    );
    let p = Platform::i7_10510u();
    let seq_a: ScheduleSequence = vec![
        ConcretePrimitive::new(PrimitiveKind::Split, "softmax")
            .with_loops(["r"])
            .with_ints([4096, 8]),
        ConcretePrimitive::new(PrimitiveKind::Fuse, "softmax").with_loops(["r.0"]),
        ConcretePrimitive::new(PrimitiveKind::Annotation, "softmax")
            .with_loops(["r.0"])
            .with_extras(["parallel"]),
    ]
    .into_iter()
    .collect();
    let la = latency(&p, &sg, &seq_a);
    // Roofline: softmax is bandwidth-bound; its latency should be within a
    // small factor of pure streaming time.
    let stream = (sg.bytes_read() + sg.bytes_written()) / (p.dram_gbps * 1e9);
    assert!(
        la > stream * 0.5 && la < stream * 20.0,
        "la {la} stream {stream}"
    );
}

#[test]
fn gpu_latency_insensitive_to_cpu_annotations() {
    // A CPU-annotated schedule on a GPU leaves threads unbound — the
    // simulator must flag it as catastrophically slow rather than crash.
    let sg = dense(512, 512, 128);
    let seq = cpu_schedule(&sg, [2, 2, 8], [2, 2, 16], 16, 64);
    let l = latency(&Platform::tesla_t4(), &sg, &seq);
    let spec = lower(&sg, &seq).unwrap();
    assert_eq!(spec.block_threads, 0);
    assert!(l.is_finite() && l > 0.0);
    // Unbound GPU programs are far slower than the same schedule on a CPU.
    assert!(l > latency(&Platform::i7_10510u(), &sg, &seq));
}

#[test]
fn noise_is_reproducible_but_varies_across_schedules() {
    let sg = dense(128, 128, 128);
    let p = Platform::graviton2();
    let a = cpu_schedule(&sg, [2, 2, 8], [2, 2, 8], 8, 16);
    let b = cpu_schedule(&sg, [2, 2, 8], [2, 2, 8], 8, 64);
    let la1 = latency(&p, &sg, &a);
    let la2 = latency(&p, &sg, &a);
    let lb = latency(&p, &sg, &b);
    assert_eq!(la1, la2, "same schedule, same measurement");
    assert_ne!(la1, lb, "different schedules differ");
}
