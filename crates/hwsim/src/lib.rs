//! `tlp-hwsim` — simulated hardware for the TLP (ASPLOS 2023) reproduction.
//!
//! The paper measures tensor programs on five CPUs and two GPUs. This crate
//! substitutes that testbed with:
//!
//! - [`Platform`]: the seven platforms of Table 5, parameterized by their
//!   microarchitecture (SIMD width, cores/SMs, caches, bandwidth, quirks);
//! - [`lower`](fn@lower): a mini code generator interpreting schedule-primitive
//!   sequences into a structural [`ProgramSpec`];
//! - [`Simulator`]: an analytical latency model (roofline + SIMD + parallel
//!   + cache blocking + GPU occupancy + platform idiosyncrasies);
//! - [`SimClock`] / [`MeasureCost`]: simulated search-time accounting;
//! - [`FaultModel`] / [`FaultRates`]: deterministic fault injection
//!   (transient build failures, timeouts, device resets, latency outliers)
//!   reproducing the unreliability of real-hardware measurement.
//!
//! # Example
//!
//! ```
//! use tlp_hwsim::{lower, Platform, Simulator};
//! use tlp_schedule::{ConcretePrimitive, PrimitiveKind, ScheduleSequence};
//! use tlp_workload::{AnchorOp, Subgraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sg = Subgraph::new("d", AnchorOp::Dense { m: 128, n: 128, k: 128 });
//! let seq: ScheduleSequence = [ConcretePrimitive::new(PrimitiveKind::Split, "dense")
//!     .with_loops(["j"])
//!     .with_ints([128, 16])]
//! .into_iter()
//! .collect();
//! let spec = lower(&sg, &seq)?;
//! let lat = Simulator::new().latency(&Platform::i7_10510u(), &sg, &spec, seq.fingerprint());
//! assert!(lat > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![allow(clippy::disallowed_types)] // keyed lookups only; determinism-critical crates opt in (clippy.toml)

pub mod analytic;
pub mod clock;
pub mod fault;
pub mod lower;
pub mod platform;
pub mod render;

pub use analytic::{preferred_unroll, Simulator};
pub use clock::{MeasureCost, SimClock};
pub use fault::{FaultClass, FaultModel, FaultRates, InjectedFault};
pub use lower::{lower, AxisTiles, LowerError, ProgramSpec};
pub use platform::{Arch, DeviceKind, Platform};
pub use render::render_program;
