//! Deterministic fault injection for the simulated measurement pipeline.
//!
//! Real-hardware measurement is unreliable: TVM/Ansor's measurer routinely
//! hits build errors, device timeouts, driver resets, and noisy outlier
//! latencies, and both the search loop and TenSet's dataset collection are
//! engineered to survive them. The analytical simulator is infallible, so
//! this module re-introduces the failure modes *deterministically*: every
//! fault decision is a pure hash of `(seed, schedule fingerprint, platform
//! salt, attempt)` — the same run always observes the same fault schedule,
//! and a run with all rates at `0.0` observes none at all and is
//! bit-identical to the fault-free path.
//!
//! The only stateful behaviour is device-reset poisoning: a
//! [`InjectedFault::DeviceReset`] leaves the (simulated) device wedged, so
//! the next [`FaultModel::reset_poison_k`] measurement attempts — whatever
//! schedule they belong to — also fail with `DeviceReset`. This reproduces
//! the bursty failure cascades a real tuning farm sees after a GPU hang.

use serde::{Deserialize, Serialize};

use crate::platform::Platform;

/// Per-attempt / per-repeat fault probabilities. All in `[0, 1]`.
///
/// `ZERO` (the default) disables injection entirely; the measurement path is
/// then bit-identical to the historical fault-free code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability that a measurement attempt fails to build (transient
    /// compile/link failure — distinct from a schedule that can never
    /// lower).
    pub build_fail: f64,
    /// Probability that a measurement attempt hangs until the timeout
    /// budget expires.
    pub timeout: f64,
    /// Probability that a measurement attempt wedges the device; the next
    /// [`FaultModel::reset_poison_k`] attempts also fail.
    pub device_reset: f64,
    /// Per-repeat probability of an outlier latency spike (3–23× the true
    /// latency), the kind MAD filtering exists to reject.
    pub outlier: f64,
    /// Multiplicative per-repeat latency noise amplitude: each repeat is
    /// scaled by a factor drawn uniformly from `[1 - noise, 1 + noise]`.
    pub noise: f64,
}

impl FaultRates {
    /// No injection at all.
    pub const ZERO: FaultRates = FaultRates {
        build_fail: 0.0,
        timeout: 0.0,
        device_reset: 0.0,
        outlier: 0.0,
        noise: 0.0,
    };

    /// A uniform chaos profile: every attempt-level fault class fires with
    /// probability `rate / 3` (so the *total* attempt failure probability is
    /// `rate`), repeats spike as outliers with probability `rate / 2`, and
    /// latency noise has amplitude `rate / 4`.
    pub fn uniform(rate: f64) -> FaultRates {
        FaultRates {
            build_fail: rate / 3.0,
            timeout: rate / 3.0,
            device_reset: rate / 3.0,
            outlier: rate / 2.0,
            noise: rate / 4.0,
        }
    }

    /// Whether every rate is exactly zero (the bit-identical fast path).
    pub fn is_zero(&self) -> bool {
        *self == FaultRates::ZERO
    }

    /// Total probability that one measurement attempt fails outright
    /// (build + timeout + reset), before retries.
    pub fn attempt_failure(&self) -> f64 {
        self.build_fail + self.timeout + self.device_reset
    }
}

/// The failure classes a measurement can be labeled with — the TenSet-style
/// per-record error taxonomy shared by measurement records and dataset
/// records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// The program failed to build (real lowering failure or injected
    /// transient compile failure).
    BuildError,
    /// The measurement did not finish within the timeout budget.
    Timeout,
    /// The device wedged and had to be reset.
    DeviceReset,
    /// Every repeat was rejected as a latency outlier.
    Outlier,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultClass::BuildError => "build-error",
            FaultClass::Timeout => "timeout",
            FaultClass::DeviceReset => "device-reset",
            FaultClass::Outlier => "outlier",
        };
        f.write_str(s)
    }
}

/// The outcome of one attempt-level fault draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The attempt proceeds normally.
    None,
    /// Transient build failure.
    BuildFail,
    /// The attempt hangs until the timeout budget expires.
    Timeout,
    /// The device wedges; subsequent attempts are poisoned.
    DeviceReset,
}

impl InjectedFault {
    /// The error class a record is labeled with, `None` for a clean attempt.
    pub fn class(&self) -> Option<FaultClass> {
        match self {
            InjectedFault::None => None,
            InjectedFault::BuildFail => Some(FaultClass::BuildError),
            InjectedFault::Timeout => Some(FaultClass::Timeout),
            InjectedFault::DeviceReset => Some(FaultClass::DeviceReset),
        }
    }
}

/// splitmix64: a strong deterministic 64-bit mixer. Chaining it over the
/// seed, fingerprint, platform salt and attempt index gives an independent
/// uniform draw per decision without any RNG stream to perturb.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a chain of mixed words.
fn uniform(words: &[u64]) -> f64 {
    let mut h = 0x5DEECE66Du64;
    for &w in words {
        h = mix(h ^ w);
    }
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic fault injector for one measurement context (one tuning run
/// or one dataset-collection task on one platform).
///
/// Cheap to construct; hold one per `Measurer`. All decisions are pure
/// functions of the construction seed and the draw coordinates, except the
/// device-reset poison counter (see the module docs).
#[derive(Clone, Debug)]
pub struct FaultModel {
    rates: FaultRates,
    seed: u64,
    platform_salt: u64,
    /// Measurement attempts a device reset poisons (the "next K" of the
    /// fault taxonomy). Default 3.
    pub reset_poison_k: u32,
    poisoned: u32,
}

impl FaultModel {
    /// A fault model with the given seed and rates (no platform salt).
    pub fn new(seed: u64, rates: FaultRates) -> FaultModel {
        FaultModel {
            rates,
            seed,
            platform_salt: 0,
            reset_poison_k: 3,
            poisoned: 0,
        }
    }

    /// A fault model salted by the platform's quirk seed, so the same
    /// schedule observes an independent fault schedule per platform — the
    /// "seeded per (schedule fingerprint, platform)" contract.
    pub fn for_platform(seed: u64, rates: FaultRates, platform: &Platform) -> FaultModel {
        FaultModel {
            platform_salt: platform.quirk_seed,
            ..FaultModel::new(seed, rates)
        }
    }

    /// A model that never injects anything (the fault-free path).
    pub fn inert() -> FaultModel {
        FaultModel::new(0, FaultRates::ZERO)
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Whether this model can never inject a fault. Inert models guarantee
    /// the measurement path is bit-identical to the fault-free code.
    pub fn is_inert(&self) -> bool {
        self.rates.is_zero()
    }

    /// Whether per-repeat latency samples can be perturbed (noise or
    /// outliers); when `false`, repeats are exact and the closed-form
    /// measurement-cost formula applies.
    pub fn perturbs_samples(&self) -> bool {
        self.rates.noise > 0.0 || self.rates.outlier > 0.0
    }

    /// Remaining attempts poisoned by an earlier device reset.
    pub fn poisoned_remaining(&self) -> u32 {
        self.poisoned
    }

    /// Draws the attempt-level fault for measuring the schedule with
    /// fingerprint `fingerprint`, on retry `attempt` (0 = first try).
    ///
    /// Deterministic in `(seed, fingerprint, platform, attempt)` except for
    /// reset poisoning: while a previous reset's poison window is open this
    /// returns [`InjectedFault::DeviceReset`] unconditionally and consumes
    /// one poisoned slot.
    pub fn draw(&mut self, fingerprint: u64, attempt: u32) -> InjectedFault {
        if self.poisoned > 0 {
            self.poisoned -= 1;
            return InjectedFault::DeviceReset;
        }
        if self.rates.attempt_failure() <= 0.0 {
            return InjectedFault::None;
        }
        let u = uniform(&[
            self.seed,
            fingerprint,
            self.platform_salt,
            attempt as u64,
            0xA7,
        ]);
        let r = &self.rates;
        if u < r.build_fail {
            InjectedFault::BuildFail
        } else if u < r.build_fail + r.timeout {
            InjectedFault::Timeout
        } else if u < r.attempt_failure() {
            self.poisoned = self.reset_poison_k;
            InjectedFault::DeviceReset
        } else {
            InjectedFault::None
        }
    }

    /// The multiplicative latency factor for repeat `repeat` of attempt
    /// `attempt`: an outlier spike (3–23×) with probability
    /// [`FaultRates::outlier`], otherwise uniform noise of amplitude
    /// [`FaultRates::noise`]. Exactly `1.0` when the model does not perturb
    /// samples.
    pub fn sample_factor(&self, fingerprint: u64, attempt: u32, repeat: u32) -> f64 {
        if !self.perturbs_samples() {
            return 1.0;
        }
        let coords = [
            self.seed,
            fingerprint,
            self.platform_salt,
            attempt as u64,
            repeat as u64,
            0xF1,
        ];
        let u = uniform(&coords);
        if u < self.rates.outlier {
            // Re-mix for the spike magnitude so it is independent of the
            // trigger draw.
            let m = uniform(&[self.seed, fingerprint, attempt as u64, repeat as u64, 0xF2]);
            3.0 + 20.0 * m
        } else if self.rates.noise > 0.0 {
            let n = uniform(&[self.seed, fingerprint, attempt as u64, repeat as u64, 0xF3]);
            (1.0 + self.rates.noise * (2.0 * n - 1.0)).max(0.05)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn inert_model_never_injects() {
        let mut m = FaultModel::inert();
        for fp in 0..500u64 {
            assert_eq!(m.draw(fp, 0), InjectedFault::None);
            assert_eq!(m.sample_factor(fp, 0, 0), 1.0);
        }
        assert!(m.is_inert());
        assert!(!m.perturbs_samples());
        assert_eq!(m.poisoned_remaining(), 0);
    }

    #[test]
    fn same_seed_same_rates_same_schedule() {
        let rates = FaultRates::uniform(0.3);
        let mut a = FaultModel::for_platform(7, rates, &Platform::i7_10510u());
        let mut b = FaultModel::for_platform(7, rates, &Platform::i7_10510u());
        for fp in 0..2000u64 {
            assert_eq!(a.draw(fp, 0), b.draw(fp, 0));
            assert_eq!(a.sample_factor(fp, 0, 1), b.sample_factor(fp, 0, 1));
        }
    }

    #[test]
    fn different_platforms_observe_different_schedules() {
        let rates = FaultRates::uniform(0.3);
        let mut a = FaultModel::for_platform(7, rates, &Platform::i7_10510u());
        let mut b = FaultModel::for_platform(7, rates, &Platform::e5_2673());
        let diff = (0..2000u64)
            .filter(|&fp| a.draw(fp, 0) != b.draw(fp, 0))
            .count();
        assert!(diff > 0, "platform salt must decorrelate fault schedules");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let rates = FaultRates {
            build_fail: 0.1,
            timeout: 0.1,
            device_reset: 0.0,
            outlier: 0.0,
            noise: 0.0,
        };
        let mut m = FaultModel::new(3, rates);
        let n = 20_000;
        let mut builds = 0;
        let mut timeouts = 0;
        for fp in 0..n as u64 {
            match m.draw(fp, 0) {
                InjectedFault::BuildFail => builds += 1,
                InjectedFault::Timeout => timeouts += 1,
                _ => {}
            }
        }
        let fb = builds as f64 / n as f64;
        let ft = timeouts as f64 / n as f64;
        assert!((fb - 0.1).abs() < 0.02, "build rate {fb}");
        assert!((ft - 0.1).abs() < 0.02, "timeout rate {ft}");
    }

    #[test]
    fn device_reset_poisons_following_attempts() {
        let rates = FaultRates {
            device_reset: 1.0,
            ..FaultRates::ZERO
        };
        let mut m = FaultModel::new(1, rates);
        assert_eq!(m.draw(42, 0), InjectedFault::DeviceReset);
        assert_eq!(m.poisoned_remaining(), m.reset_poison_k);
        // The next K draws fail regardless of fingerprint, consuming poison.
        for i in 0..m.reset_poison_k {
            let left = m.poisoned_remaining();
            assert_eq!(m.draw(1000 + i as u64, 0), InjectedFault::DeviceReset);
            assert_eq!(m.poisoned_remaining(), left - 1);
        }
    }

    #[test]
    fn outlier_factors_are_spikes_noise_is_bounded() {
        let m = FaultModel::new(
            9,
            FaultRates {
                outlier: 1.0,
                ..FaultRates::ZERO
            },
        );
        for fp in 0..100u64 {
            let f = m.sample_factor(fp, 0, 0);
            assert!((3.0..=23.0).contains(&f), "outlier factor {f}");
        }
        let m = FaultModel::new(
            9,
            FaultRates {
                noise: 0.1,
                ..FaultRates::ZERO
            },
        );
        for fp in 0..100u64 {
            let f = m.sample_factor(fp, 0, 0);
            assert!((0.9..=1.1).contains(&f), "noise factor {f}");
        }
    }
}
