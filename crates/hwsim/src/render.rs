//! Rendering lowered tensor programs as pseudo-code.
//!
//! The paper's Figure 2 contrasts logically equivalent tensor programs with
//! different loop structures. This module renders a [`ProgramSpec`] the same
//! way — nested loops with parallel/vectorize/unroll/bind annotations — for
//! examples, debugging, and documentation.

use crate::lower::ProgramSpec;
use std::fmt::Write as _;
use tlp_workload::{LoopKind, Subgraph};

/// Renders the lowered program as indented pseudo-code.
///
/// The canonical multi-level-tiling order is shown: outer spatial levels
/// (fused & parallel/bound), reduction levels, inner spatial levels, and the
/// innermost statement with its fused epilogues.
pub fn render_program(subgraph: &Subgraph, spec: &ProgramSpec) -> String {
    let mut out = String::new();
    let gpu = spec.block_threads > 0 || spec.grid_blocks > 0;
    let _ = writeln!(out, "// {}", subgraph.anchor);
    if spec.cache_write {
        let _ = writeln!(out, "// with accumulator cache stage");
    }
    if spec.cache_read {
        let _ = writeln!(out, "// with shared-memory cache stage");
    }
    if spec.unroll_step > 0 {
        let _ = writeln!(out, "#pragma auto_unroll_max_step = {}", spec.unroll_step);
    }

    let mut depth = 0usize;
    let emit = |line: &str, depth: usize| {
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("  ");
        }
        s.push_str(line);
        s.push('\n');
        s
    };

    // Level 0: fused outer loops.
    let outer_extent: i64 = spec
        .spatial_axes()
        .map(|a| a.tiles.first().copied().unwrap_or(1))
        .product();
    let outer_ann = if gpu {
        format!(
            "bind(blockIdx.x)  // {} blocks",
            spec.grid_blocks.max(outer_extent)
        )
    } else if spec.parallel_extent > 1 {
        format!("parallel  // {} chunks", spec.parallel_extent)
    } else {
        "serial".to_string()
    };
    out += &emit(
        &format!("for fused_outer in 0..{outer_extent} @{outer_ann}"),
        depth,
    );
    depth += 1;

    // Remaining levels interleaved with reductions (SSRSRS).
    let levels = spec
        .spatial_axes()
        .map(|a| a.tiles.len())
        .max()
        .unwrap_or(1);
    for level in 1..levels {
        if level == 2 {
            for a in spec.reduction_axes() {
                let e = a.tiles.first().copied().unwrap_or(a.extent);
                out += &emit(&format!("for {}_o in 0..{e}", a.name), depth);
                depth += 1;
            }
        }
        if level == 3 {
            for a in spec.reduction_axes() {
                if a.tiles.len() > 1 {
                    out += &emit(&format!("for {}_i in 0..{}", a.name, a.inner()), depth);
                    depth += 1;
                }
            }
        }
        for a in spec.spatial_axes() {
            if let Some(&t) = a.tiles.get(level) {
                let mut ann = String::new();
                if gpu && level == 2 {
                    ann = "  @bind(threadIdx.x)".to_string();
                } else if level + 1 == levels && spec.vector_len == t {
                    ann = "  @vectorize".to_string();
                }
                out += &emit(&format!("for {}.{level} in 0..{t}{ann}", a.name), depth);
                depth += 1;
            }
        }
    }

    // Innermost statement.
    let stmt = match subgraph
        .loops()
        .iter()
        .find(|l| l.kind == LoopKind::Reduction)
    {
        Some(_) => format!("{}[out_idx] += lhs[...] * rhs[...]", subgraph.anchor.name()),
        None => format!("{}[out_idx] = f(in[...])", subgraph.anchor.name()),
    };
    out += &emit(&stmt, depth);
    for f in &subgraph.fused {
        out += &emit(&format!("// fused: {}", f.stage_name()), depth);
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::lower::lower;
    use tlp_schedule::{ConcretePrimitive, PrimitiveKind, ScheduleSequence};
    use tlp_workload::{AnchorOp, FusedOp};

    fn dense() -> Subgraph {
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 64,
                n: 128,
                k: 256,
            },
        )
        .with_fused([FusedOp::Relu])
    }

    fn schedule() -> ScheduleSequence {
        vec![
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["i"])
                .with_ints([64, 2, 2, 8]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["j"])
                .with_ints([128, 2, 2, 16]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["k"])
                .with_ints([256, 16]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.0", "j.0"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.0@j.0"])
                .with_extras(["parallel"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["j.3"])
                .with_extras(["vectorize"]),
            ConcretePrimitive::new(PrimitiveKind::Pragma, "dense")
                .with_ints([64])
                .with_extras(["auto_unroll_max_step"]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn renders_loops_and_annotations() {
        let sg = dense();
        let spec = lower(&sg, &schedule()).unwrap();
        let text = render_program(&sg, &spec);
        assert!(text.contains("@parallel"), "{text}");
        assert!(text.contains("@vectorize"), "{text}");
        assert!(text.contains("#pragma auto_unroll_max_step = 64"), "{text}");
        assert!(text.contains("+="), "reduction statement shown:\n{text}");
        assert!(text.contains("// fused: relu"), "{text}");
        // Deeper lines are further indented.
        let lines: Vec<&str> = text.lines().collect();
        let indent = |l: &str| l.len() - l.trim_start().len();
        let first_for = lines
            .iter()
            .position(|l| l.trim_start().starts_with("for"))
            .unwrap();
        let stmt = lines.iter().position(|l| l.contains("+=")).unwrap();
        assert!(indent(lines[stmt]) > indent(lines[first_for]));
    }

    #[test]
    fn gpu_program_shows_bindings() {
        let sg = dense();
        let seq: ScheduleSequence = vec![
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["i"])
                .with_ints([64, 1, 8, 4]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["j"])
                .with_ints([128, 1, 16, 4]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.0", "j.0"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.0@j.0"])
                .with_extras(["blockIdx.x"]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.2", "j.2"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.2@j.2"])
                .with_extras(["threadIdx.x"]),
        ]
        .into_iter()
        .collect();
        let spec = lower(&sg, &seq).unwrap();
        let text = render_program(&sg, &spec);
        assert!(text.contains("blockIdx.x"), "{text}");
        assert!(text.contains("threadIdx.x"), "{text}");
    }

    #[test]
    fn unscheduled_program_is_single_serial_nest() {
        let sg = Subgraph::new("s", AnchorOp::Softmax { rows: 4, cols: 8 });
        let spec = lower(&sg, &ScheduleSequence::new()).unwrap();
        let text = render_program(&sg, &spec);
        assert!(text.contains("@serial"), "{text}");
    }
}
