//! Lowering: schedule-primitive sequences → simulated tensor programs.
//!
//! This is the reproduction's stand-in for TVM's code generator. It
//! interprets a [`ScheduleSequence`] against a [`Subgraph`]'s loop nest and
//! produces a [`ProgramSpec`] — the structural facts about the generated
//! program (tiling, parallelization, vectorization, caching) that the
//! analytical hardware model consumes.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tlp_schedule::{ConcretePrimitive, PrimitiveKind, ScheduleSequence};
use tlp_workload::{LoopKind, Subgraph};

/// Per-original-axis tiling information after lowering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AxisTiles {
    /// Original axis name (e.g. `i`, `oc`).
    pub name: String,
    /// Spatial or reduction.
    pub kind: LoopKind,
    /// Original extent.
    pub extent: i64,
    /// Sub-loop extents outer→inner (length 1 if never split).
    pub tiles: Vec<i64>,
}

impl AxisTiles {
    /// The innermost tile extent (the full extent if the axis was never
    /// split; `tiles` always has at least one level by construction).
    pub fn inner(&self) -> i64 {
        self.tiles.last().copied().unwrap_or(self.extent)
    }

    /// Product of the innermost `levels` tile extents.
    pub fn inner_product(&self, levels: usize) -> i64 {
        self.tiles.iter().rev().take(levels).product()
    }
}

/// The structural summary of a lowered tensor program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Tiling of every original axis.
    pub axes: Vec<AxisTiles>,
    /// Iteration count of the parallel-annotated (CPU) outer loop; 1 if the
    /// program was never parallelized.
    pub parallel_extent: i64,
    /// Extent of the vectorize-annotated loop (0 if none).
    pub vector_len: i64,
    /// Product of extents of unroll-annotated loops.
    pub unroll_product: i64,
    /// `auto_unroll_max_step` pragma value (0 if absent).
    pub unroll_step: i64,
    /// Whether a cache-write stage exists.
    pub cache_write: bool,
    /// Whether a cache-read (shared-memory) stage exists.
    pub cache_read: bool,
    /// GPU: total threads per block (product of `threadIdx.*` extents); 0 on CPU.
    pub block_threads: i64,
    /// GPU: total blocks (product of `blockIdx.*` extents); 0 on CPU.
    pub grid_blocks: i64,
    /// Number of compute-inlined elementwise stages.
    pub inlined_stages: usize,
    /// Whether the reduction was rfactored.
    pub rfactor: bool,
}

impl ProgramSpec {
    /// Tiles of the spatial axes only.
    pub fn spatial_axes(&self) -> impl Iterator<Item = &AxisTiles> {
        self.axes.iter().filter(|a| a.kind == LoopKind::Spatial)
    }

    /// Tiles of the reduction axes only.
    pub fn reduction_axes(&self) -> impl Iterator<Item = &AxisTiles> {
        self.axes.iter().filter(|a| a.kind == LoopKind::Reduction)
    }

    /// Register-tile size: product of innermost spatial tile extents.
    pub fn register_tile(&self) -> i64 {
        self.spatial_axes().map(AxisTiles::inner).product()
    }

    /// Product of the innermost reduction tile extents.
    pub fn reduction_inner(&self) -> i64 {
        self.reduction_axes().map(AxisTiles::inner).product()
    }

    /// Total reduction extent.
    pub fn reduction_total(&self) -> i64 {
        self.reduction_axes().map(|a| a.extent).product()
    }
}

/// Error produced when a schedule does not lower against a subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A primitive referenced a loop variable that does not exist.
    UnknownLoopVar(String),
    /// A split had no factors.
    EmptySplit(String),
    /// A non-positive split factor.
    BadFactor(String, i64),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownLoopVar(v) => write!(f, "unknown loop variable `{v}`"),
            LowerError::EmptySplit(v) => write!(f, "split of `{v}` has no factors"),
            LowerError::BadFactor(v, n) => write!(f, "split of `{v}` has bad factor {n}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a schedule against a subgraph, producing the program structure.
///
/// # Errors
///
/// Returns [`LowerError`] if the schedule references unknown loop variables
/// or contains malformed splits. The search framework only generates valid
/// schedules, but mutated/deserialized sequences are validated here.
///
/// # Soundness contract with `tlp-verify`
///
/// The static analyzer in `tlp-verify` is sound with respect to this
/// function: every schedule this function rejects carries at least one
/// error-severity diagnostic, and a schedule the analyzer passes never
/// returns [`LowerError`]. Changing what this function rejects (new error
/// conditions, relaxed checks, different live-variable bookkeeping) requires
/// a matching analyzer change; the root-package `verify_soundness` property
/// test pins both directions of the contract.
pub fn lower(subgraph: &Subgraph, schedule: &ScheduleSequence) -> Result<ProgramSpec, LowerError> {
    let mut axes: Vec<AxisTiles> = subgraph
        .loops()
        .into_iter()
        .map(|l| AxisTiles {
            name: l.name.clone(),
            kind: l.kind,
            extent: l.extent,
            tiles: vec![l.extent],
        })
        .collect();

    // Live loop variables → (axis index, extent). Sub-loops of axis `i` are
    // named `i.0` (outer) … `i.k` (inner); fused vars join names with `@`.
    let mut live: HashMap<String, i64> = axes.iter().map(|a| (a.name.clone(), a.extent)).collect();

    let mut spec = ProgramSpec {
        axes: Vec::new(),
        parallel_extent: 1,
        vector_len: 0,
        unroll_product: 1,
        unroll_step: 0,
        cache_write: false,
        cache_read: false,
        block_threads: 0,
        grid_blocks: 0,
        inlined_stages: 0,
        rfactor: false,
    };

    let anchor_stage = subgraph.anchor.name();
    for p in schedule {
        match p.kind {
            PrimitiveKind::Split | PrimitiveKind::FollowSplit | PrimitiveKind::FollowFusedSplit => {
                if p.stage == anchor_stage {
                    apply_split(&mut axes, &mut live, p)?;
                } else {
                    // Cache/shared stages mirror the anchor's tiling; their
                    // splits don't change the anchor loop structure, but the
                    // factors are still validated.
                    for &f in &p.ints {
                        if f <= 0 {
                            return Err(LowerError::BadFactor(
                                p.loop_vars.first().cloned().unwrap_or_default(),
                                f,
                            ));
                        }
                    }
                }
            }
            PrimitiveKind::Fuse => {
                let mut product: i64 = 1;
                for v in &p.loop_vars {
                    let e = *live
                        .get(v)
                        .ok_or_else(|| LowerError::UnknownLoopVar(v.clone()))?;
                    product = product.saturating_mul(e);
                }
                let fused_name = p.loop_vars.join("@");
                live.insert(fused_name, product);
            }
            PrimitiveKind::Annotation => {
                let var = p
                    .loop_vars
                    .first()
                    .ok_or_else(|| LowerError::UnknownLoopVar("<missing>".into()))?;
                let extent = *live
                    .get(var)
                    .ok_or_else(|| LowerError::UnknownLoopVar(var.clone()))?;
                for ann in &p.extras {
                    match ann.as_str() {
                        "parallel" => spec.parallel_extent = spec.parallel_extent.max(extent),
                        "vectorize" => spec.vector_len = extent,
                        "unroll" => {
                            spec.unroll_product = spec.unroll_product.saturating_mul(extent)
                        }
                        "blockIdx.x" | "blockIdx.y" => {
                            spec.grid_blocks = spec.grid_blocks.max(1).saturating_mul(extent)
                        }
                        "threadIdx.x" | "threadIdx.y" => {
                            spec.block_threads = spec.block_threads.max(1).saturating_mul(extent)
                        }
                        "vthread" => {}
                        _ => {}
                    }
                }
            }
            PrimitiveKind::Pragma => {
                if p.extras.iter().any(|e| e == "auto_unroll_max_step") {
                    spec.unroll_step = p.ints.first().copied().unwrap_or(0);
                }
            }
            PrimitiveKind::CacheWrite => spec.cache_write = true,
            PrimitiveKind::CacheRead => spec.cache_read = true,
            PrimitiveKind::ComputeInline => spec.inlined_stages += 1,
            PrimitiveKind::Rfactor => spec.rfactor = true,
            // Reorder only permutes loops; the generator emits the canonical
            // multi-level-tiling order, which the analytical model assumes.
            // Compute-at/compute-root placement is reflected through the
            // cache-stage flags above.
            PrimitiveKind::Reorder
            | PrimitiveKind::ComputeAt
            | PrimitiveKind::ComputeRoot
            | PrimitiveKind::StorageAlign => {}
        }
    }

    spec.axes = axes;
    Ok(spec)
}

fn apply_split(
    axes: &mut [AxisTiles],
    live: &mut HashMap<String, i64>,
    p: &ConcretePrimitive,
) -> Result<(), LowerError> {
    let var = p
        .loop_vars
        .first()
        .ok_or_else(|| LowerError::UnknownLoopVar("<missing>".into()))?;
    // Ansor's record convention: ints[0] is the loop extent, ints[1..] are
    // the inner tile lengths. The extent makes the schedule sequence carry
    // the subgraph's computational parameters (paper §4.3).
    if p.ints.len() < 2 {
        return Err(LowerError::EmptySplit(var.clone()));
    }
    let factors = &p.ints[1..];
    for &f in p.ints.iter() {
        if f <= 0 {
            return Err(LowerError::BadFactor(var.clone(), f));
        }
    }
    // Splits target original axes (the sketch splits each axis once).
    let axis = axes
        .iter_mut()
        .find(|a| &a.name == var)
        .ok_or_else(|| LowerError::UnknownLoopVar(var.clone()))?;
    let inner_product: i64 = factors.iter().product();
    let outer = (axis.extent + inner_product - 1) / inner_product;
    let mut tiles = Vec::with_capacity(factors.len() + 1);
    tiles.push(outer.max(1));
    tiles.extend(factors.iter().copied());
    axis.tiles = tiles;
    live.remove(var);
    for (i, &t) in axis.tiles.iter().enumerate() {
        live.insert(format!("{var}.{i}"), t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use tlp_workload::AnchorOp;

    fn dense() -> Subgraph {
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 64,
                n: 128,
                k: 256,
            },
        )
    }

    fn seq(prims: Vec<ConcretePrimitive>) -> ScheduleSequence {
        prims.into_iter().collect()
    }

    #[test]
    fn split_creates_tile_levels() {
        let s = seq(vec![ConcretePrimitive::new(PrimitiveKind::Split, "dense")
            .with_loops(["i"])
            .with_ints([64, 4, 8])]);
        let spec = lower(&dense(), &s).unwrap();
        let i = &spec.axes[0];
        assert_eq!(i.tiles, vec![2, 4, 8]); // 64 / (4*8) = 2
        assert_eq!(i.inner(), 8);
        assert_eq!(i.inner_product(2), 32);
    }

    #[test]
    fn fuse_and_parallel_annotation() {
        let s = seq(vec![
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["i"])
                .with_ints([64, 4, 4]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["j"])
                .with_ints([128, 4, 8]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.0", "j.0"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.0@j.0"])
                .with_extras(["parallel"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["j.2"])
                .with_extras(["vectorize"]),
        ]);
        let spec = lower(&dense(), &s).unwrap();
        assert_eq!(spec.parallel_extent, 4 * 4); // i.0 = 64/16, j.0 = 128/32
        assert_eq!(spec.vector_len, 8);
        assert_eq!(spec.register_tile(), 4 * 8);
    }

    #[test]
    fn pragma_and_cache_flags() {
        let s = seq(vec![
            ConcretePrimitive::new(PrimitiveKind::Pragma, "dense")
                .with_ints([512])
                .with_extras(["auto_unroll_max_step"]),
            ConcretePrimitive::new(PrimitiveKind::CacheWrite, "dense"),
            ConcretePrimitive::new(PrimitiveKind::ComputeInline, "relu"),
        ]);
        let spec = lower(&dense(), &s).unwrap();
        assert_eq!(spec.unroll_step, 512);
        assert!(spec.cache_write);
        assert_eq!(spec.inlined_stages, 1);
    }

    #[test]
    fn gpu_bindings() {
        let s = seq(vec![
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["i"])
                .with_ints([64, 16]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.0"])
                .with_extras(["blockIdx.x"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.1"])
                .with_extras(["threadIdx.x"]),
        ]);
        let spec = lower(&dense(), &s).unwrap();
        assert_eq!(spec.grid_blocks, 4);
        assert_eq!(spec.block_threads, 16);
    }

    #[test]
    fn unknown_var_is_an_error() {
        let s = seq(vec![ConcretePrimitive::new(
            PrimitiveKind::Annotation,
            "dense",
        )
        .with_loops(["zz"])
        .with_extras(["parallel"])]);
        assert!(matches!(
            lower(&dense(), &s),
            Err(LowerError::UnknownLoopVar(_))
        ));
    }

    #[test]
    fn bad_split_factor_is_an_error() {
        let s = seq(vec![ConcretePrimitive::new(PrimitiveKind::Split, "dense")
            .with_loops(["i"])
            .with_ints([64, 0])]);
        assert!(matches!(
            lower(&dense(), &s),
            Err(LowerError::BadFactor(_, 0))
        ));
    }

    #[test]
    fn reduction_helpers() {
        let s = seq(vec![ConcretePrimitive::new(PrimitiveKind::Split, "dense")
            .with_loops(["k"])
            .with_ints([256, 16])]);
        let spec = lower(&dense(), &s).unwrap();
        assert_eq!(spec.reduction_inner(), 16);
        assert_eq!(spec.reduction_total(), 256);
    }
}
