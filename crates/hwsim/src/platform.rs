//! Simulated hardware platforms.
//!
//! The seven platforms of the paper's Table 5 (five CPUs, two GPUs), modelled
//! by their public microarchitectural parameters. Cross-platform *domain
//! gaps* — the reason offline cost models do not transfer (paper §5.1) —
//! arise from differences in SIMD width, core count, cache hierarchy,
//! bandwidth, and per-platform idiosyncrasies (`quirk_seed`).

use serde::{Deserialize, Serialize};

/// Instruction-set / vendor family (drives MTL cross-architecture effects).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Intel x86-64.
    IntelX86,
    /// AMD x86-64.
    AmdX86,
    /// 64-bit ARM.
    Arm,
    /// NVIDIA GPU.
    NvidiaGpu,
}

/// CPU or GPU device class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Multicore CPU.
    Cpu,
    /// CUDA-style GPU.
    Gpu,
}

/// A hardware platform the simulator can "measure" tensor programs on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Marketing name, e.g. `platinum-8272`.
    pub name: String,
    /// Vendor/ISA family.
    pub arch: Arch,
    /// CPU or GPU.
    pub device: DeviceKind,
    /// Physical cores (CPU) or streaming multiprocessors (GPU).
    pub cores: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// f32 SIMD lanes per FMA unit (CPU) / CUDA cores per SM (GPU).
    pub vector_lanes: u32,
    /// FMA units per core.
    pub fma_units: u32,
    /// L1 data cache per core, KiB (GPU: shared memory per SM).
    pub l1_kb: f64,
    /// L2 cache per core, KiB (GPU: total L2).
    pub l2_kb: f64,
    /// Shared last-level cache, KiB (GPU: 0).
    pub l3_kb: f64,
    /// DRAM bandwidth, GB/s.
    pub dram_gbps: f64,
    /// Parallel-region / kernel-launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Seed for platform-specific response idiosyncrasies (e.g. preferred
    /// unroll factors), the irreducible part of the hardware domain gap.
    pub quirk_seed: u64,
}

impl Platform {
    /// Peak f32 throughput in GFLOP/s (2 flops per FMA lane per cycle).
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.vector_lanes as f64 * self.fma_units as f64 * 2.0
    }

    /// Whether this platform is a GPU.
    pub fn is_gpu(&self) -> bool {
        self.device == DeviceKind::Gpu
    }

    /// Intel Xeon Platinum 8272CL @ 2.60 GHz, 16 cores (AVX-512).
    pub fn platinum_8272() -> Platform {
        Platform {
            name: "platinum-8272".into(),
            arch: Arch::IntelX86,
            device: DeviceKind::Cpu,
            cores: 16,
            freq_ghz: 2.6,
            vector_lanes: 16,
            fma_units: 2,
            l1_kb: 32.0,
            l2_kb: 1024.0,
            l3_kb: 36608.0,
            dram_gbps: 110.0,
            launch_overhead_us: 6.0,
            quirk_seed: 0x8272,
        }
    }

    /// Intel Xeon E5-2673 v4 @ 2.30 GHz, 8 cores (AVX2).
    pub fn e5_2673() -> Platform {
        Platform {
            name: "e5-2673".into(),
            arch: Arch::IntelX86,
            device: DeviceKind::Cpu,
            cores: 8,
            freq_ghz: 2.3,
            vector_lanes: 8,
            fma_units: 2,
            l1_kb: 32.0,
            l2_kb: 256.0,
            l3_kb: 40960.0,
            dram_gbps: 68.0,
            launch_overhead_us: 7.0,
            quirk_seed: 0x2673,
        }
    }

    /// AMD EPYC 7452 @ 2.35 GHz, 4 cores (AVX2).
    pub fn epyc_7452() -> Platform {
        Platform {
            name: "epyc-7452".into(),
            arch: Arch::AmdX86,
            device: DeviceKind::Cpu,
            cores: 4,
            freq_ghz: 2.35,
            vector_lanes: 8,
            fma_units: 2,
            l1_kb: 32.0,
            l2_kb: 512.0,
            l3_kb: 16384.0,
            dram_gbps: 48.0,
            launch_overhead_us: 8.0,
            quirk_seed: 0x7452,
        }
    }

    /// AWS Graviton2 (Neoverse N1) @ 2.50 GHz, 16 cores (NEON).
    pub fn graviton2() -> Platform {
        Platform {
            name: "graviton2".into(),
            arch: Arch::Arm,
            device: DeviceKind::Cpu,
            cores: 16,
            freq_ghz: 2.5,
            vector_lanes: 4,
            fma_units: 2,
            l1_kb: 64.0,
            l2_kb: 1024.0,
            l3_kb: 32768.0,
            dram_gbps: 95.0,
            launch_overhead_us: 10.0,
            quirk_seed: 0x6472,
        }
    }

    /// Intel Core i7-10510U @ 1.80 GHz, 4C/8T laptop CPU (AVX2).
    pub fn i7_10510u() -> Platform {
        Platform {
            name: "i7-10510u".into(),
            arch: Arch::IntelX86,
            device: DeviceKind::Cpu,
            cores: 8,
            freq_ghz: 1.8,
            vector_lanes: 8,
            fma_units: 2,
            l1_kb: 32.0,
            l2_kb: 256.0,
            l3_kb: 8192.0,
            dram_gbps: 34.0,
            launch_overhead_us: 9.0,
            quirk_seed: 0x1051,
        }
    }

    /// AMD Ryzen 9 3950X @ 3.5 GHz, 16C/32T desktop CPU (AVX2).
    ///
    /// Not part of the paper's Table 5 set: this is the held-out "new
    /// hardware" target for continual cross-platform adaptation, so it is
    /// listed in [`Platform::all`]/[`Platform::by_name`] but deliberately
    /// excluded from [`Platform::all_cpus`] (dataset invariants assume the
    /// five Table 5 CPUs).
    pub fn ryzen_3950x() -> Platform {
        Platform {
            name: "ryzen-3950x".into(),
            arch: Arch::AmdX86,
            device: DeviceKind::Cpu,
            cores: 16,
            freq_ghz: 3.5,
            vector_lanes: 8,
            fma_units: 2,
            l1_kb: 32.0,
            l2_kb: 512.0,
            l3_kb: 65536.0,
            dram_gbps: 48.0,
            launch_overhead_us: 7.0,
            quirk_seed: 0x3950,
        }
    }

    /// NVIDIA Tesla K80 (one GK210 die: 13 SMs @ 0.82 GHz).
    pub fn tesla_k80() -> Platform {
        Platform {
            name: "tesla-k80".into(),
            arch: Arch::NvidiaGpu,
            device: DeviceKind::Gpu,
            cores: 13,
            freq_ghz: 0.82,
            vector_lanes: 192,
            fma_units: 1,
            l1_kb: 112.0,
            l2_kb: 1536.0,
            l3_kb: 0.0,
            dram_gbps: 240.0,
            launch_overhead_us: 12.0,
            quirk_seed: 0x0080,
        }
    }

    /// NVIDIA Tesla T4 (40 SMs @ 1.59 GHz).
    pub fn tesla_t4() -> Platform {
        Platform {
            name: "tesla-t4".into(),
            arch: Arch::NvidiaGpu,
            device: DeviceKind::Gpu,
            cores: 40,
            freq_ghz: 1.59,
            vector_lanes: 64,
            fma_units: 1,
            l1_kb: 64.0,
            l2_kb: 4096.0,
            l3_kb: 0.0,
            dram_gbps: 320.0,
            launch_overhead_us: 8.0,
            quirk_seed: 0x00b4,
        }
    }

    /// The five CPU platforms of Table 5.
    pub fn all_cpus() -> Vec<Platform> {
        vec![
            Platform::platinum_8272(),
            Platform::e5_2673(),
            Platform::epyc_7452(),
            Platform::graviton2(),
            Platform::i7_10510u(),
        ]
    }

    /// The two GPU platforms of Table 5.
    pub fn all_gpus() -> Vec<Platform> {
        vec![Platform::tesla_k80(), Platform::tesla_t4()]
    }

    /// All seven platforms of Table 5, plus the continual-learning target.
    pub fn all() -> Vec<Platform> {
        let mut v = Platform::all_cpus();
        v.extend(Platform::all_gpus());
        v.push(Platform::ryzen_3950x());
        v
    }

    /// Looks up a platform by name.
    pub fn by_name(name: &str) -> Option<Platform> {
        Platform::all().into_iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_platforms_plus_continual_target() {
        // Table 5 set (5 CPUs + 2 GPUs) plus the held-out continual target.
        assert_eq!(Platform::all().len(), 8);
        assert_eq!(Platform::all_cpus().len(), 5);
        assert_eq!(Platform::all_gpus().len(), 2);
        assert!(Platform::by_name("ryzen-3950x").is_some());
        assert!(!Platform::all_cpus().iter().any(|p| p.name == "ryzen-3950x"));
    }

    #[test]
    fn peak_flops_ordering() {
        // T4 > 8272 > i7.
        assert!(Platform::tesla_t4().peak_gflops() > Platform::platinum_8272().peak_gflops());
        assert!(Platform::platinum_8272().peak_gflops() > Platform::i7_10510u().peak_gflops());
    }

    #[test]
    fn lookup_by_name() {
        assert!(Platform::by_name("e5-2673").is_some());
        assert!(Platform::by_name("nonexistent").is_none());
    }
}
