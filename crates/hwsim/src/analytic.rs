//! The analytical hardware latency model.
//!
//! Substitutes for measuring tensor programs on real hardware. Given a
//! [`Platform`], a [`Subgraph`], and a lowered [`ProgramSpec`], it predicts a
//! latency from first-order architectural effects:
//!
//! - roofline: `max(compute time, memory time)`;
//! - SIMD utilization from the vectorized loop length vs. the platform's lanes;
//! - multicore speedup with load imbalance and spawn overhead;
//! - register-tile quality (accumulator blocking vs. spills);
//! - cache blocking: L1/L2 working sets from the tile pyramid drive the
//!   effective DRAM traffic;
//! - GPU occupancy: threads-per-block shape, wave quantization, shared memory;
//! - per-platform idiosyncrasies (preferred unroll factors and tile parities)
//!   seeded by `quirk_seed` — the irreducible hardware domain gap;
//! - small deterministic measurement noise keyed by the schedule fingerprint.
//!
//! The absolute numbers are synthetic; what matters for the reproduction is
//! that latency is a *learnable, schedule-sensitive, platform-dependent*
//! function with realistic structure.

use crate::lower::ProgramSpec;
use crate::platform::{DeviceKind, Platform};
use tlp_workload::{AnchorOp, Subgraph};

/// Deterministic tensor-program latency simulator.
///
/// Stateless; all methods take the full context. Construct once and share.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulator {
    /// Multiplicative measurement-noise amplitude (default 0.02).
    pub noise: f64,
}

impl Simulator {
    /// Creates a simulator with default noise.
    pub fn new() -> Self {
        Simulator { noise: 0.02 }
    }

    /// Predicted latency, in seconds, of running the lowered program once.
    ///
    /// `fingerprint` should be the schedule-sequence fingerprint; it seeds
    /// the deterministic measurement noise so repeated "measurements" of the
    /// same program agree.
    pub fn latency(
        &self,
        platform: &Platform,
        subgraph: &Subgraph,
        spec: &ProgramSpec,
        fingerprint: u64,
    ) -> f64 {
        let base = match platform.device {
            DeviceKind::Cpu => self.cpu_latency(platform, subgraph, spec),
            DeviceKind::Gpu => self.gpu_latency(platform, subgraph, spec),
        };
        let noise = deterministic_noise(fingerprint ^ platform.quirk_seed, self.noise);
        base * noise
    }

    fn cpu_latency(&self, p: &Platform, sg: &Subgraph, spec: &ProgramSpec) -> f64 {
        let flops = sg.flops();
        let peak = p.peak_gflops() * 1e9;
        let lanes = p.vector_lanes as f64;

        // --- SIMD efficiency -------------------------------------------------
        let eff_v = if spec.vector_len <= 0 {
            // Scalar code still dual-issues a little.
            (1.5 / lanes).min(1.0)
        } else {
            let vl = spec.vector_len as f64;
            let util = if vl >= lanes {
                if spec.vector_len % p.vector_lanes as i64 == 0 {
                    1.0
                } else {
                    0.7
                }
            } else {
                vl / lanes
            };
            0.95 * util
        };

        // --- Parallel efficiency ---------------------------------------------
        let cores = p.cores as f64;
        let par = spec.parallel_extent.max(1) as f64;
        let eff_p = if par <= 1.0 {
            1.0 / cores
        } else {
            let chunks = (par / cores).ceil();
            let used = par.min(cores) / cores;
            let balance = par / (chunks * cores);
            used * balance.clamp(0.5, 1.0)
        };

        // --- Register-tile quality -------------------------------------------
        let reg = spec.register_tile().max(1) as f64;
        let ideal_reg = lanes * 6.0;
        let eff_r = (1.0 / (1.0 + 0.22 * (reg / ideal_reg).log2().abs())).clamp(0.35, 1.0)
            * if reg > lanes * 24.0 { 0.6 } else { 1.0 }; // register spill

        // --- Unroll pragma (platform-specific preference) ---------------------
        let eff_u = unroll_efficiency(p.quirk_seed, spec.unroll_step);

        // --- Tile-parity quirk -------------------------------------------------
        let eff_q = tile_parity_quirk(p.quirk_seed, spec);

        // --- Cache model -------------------------------------------------------
        let (mi, mj, l1_i, l1_j) = blocking_tiles(spec);
        let ri = spec.reduction_inner().max(1) as f64;
        let k_total = spec.reduction_total().max(1) as f64;
        let ws1 = 4.0 * (l1_i * ri + ri * l1_j + l1_i * l1_j);
        let ws2 = 4.0 * (mi * k_total + k_total * mj + mi * mj);
        let l1 = p.l1_kb * 1024.0;
        let l2 = p.l2_kb * 1024.0;
        let compute_penalty = if ws1 > l1 {
            1.0 + 0.35 * (ws1 / l1).ln().min(3.0)
        } else {
            1.0
        };

        // Effective blocking factor bounds DRAM traffic: classic matmul
        // blocking moves `2·flops/(2·B)` operand bytes for block size B.
        let mut beff = mi.min(mj).max(1.0);
        if ws2 > l2 {
            beff *= (l2 / ws2).sqrt();
        }
        let is_compute_op = matches!(
            sg.anchor,
            AnchorOp::Dense { .. } | AnchorOp::BatchMatmul { .. } | AnchorOp::Conv2d { .. }
        );
        let naive_bytes = sg.bytes_read() + sg.bytes_written();
        let mut traffic = if is_compute_op {
            (4.0 * flops / (2.0 * beff.max(1.0))).max(naive_bytes)
        } else {
            naive_bytes
        };
        // A cache-write stage keeps partial sums out of DRAM when the
        // reduction is split across outer loops.
        let k_outer = k_total / ri;
        if !spec.cache_write && k_outer > 1.0 && is_compute_op {
            traffic += sg.bytes_written() * (k_outer - 1.0).min(8.0);
        }

        // Memory bandwidth scales sub-linearly with active cores.
        let bw = p.dram_gbps * 1e9 * (0.35 + 0.65 * (par.min(cores) / cores));

        let t_compute = flops / (peak * eff_v * eff_p * eff_r * eff_u * eff_q) * compute_penalty;
        let t_mem = traffic / bw;
        let chunks = (par / cores).ceil().max(1.0);
        let overhead = p.launch_overhead_us * 1e-6 * (1.0 + 0.02 * chunks);

        t_compute.max(t_mem) + overhead
    }

    fn gpu_latency(&self, p: &Platform, sg: &Subgraph, spec: &ProgramSpec) -> f64 {
        let flops = sg.flops();
        let peak = p.peak_gflops() * 1e9;
        let sms = p.cores as f64;

        let threads = spec.block_threads.max(0) as f64;
        if threads < 1.0 {
            // Never bound to threads: effectively serial on one CUDA core.
            return flops / (p.freq_ghz * 1e9 * 2.0) + p.launch_overhead_us * 1e-6;
        }
        let warp_eff = if spec.block_threads % 32 == 0 {
            1.0
        } else {
            0.7
        };
        // Sweet spot around 128–256 threads/block.
        let eff_t = (1.0 / (1.0 + 0.3 * (threads / 192.0).log2().abs())).clamp(0.3, 1.0);

        let blocks = spec.grid_blocks.max(1) as f64;
        let waves = (blocks / sms).ceil();
        let occupancy = (blocks / (2.0 * sms)).min(1.0) * (blocks / (waves * sms)).clamp(0.5, 1.0);

        // Shared-memory blocking via cache_read.
        let shared = p.l1_kb * 1024.0;
        let beff = if spec.cache_read {
            (shared / 12.0).sqrt()
        } else {
            (threads).sqrt().max(8.0)
        };
        let is_compute_op = matches!(
            sg.anchor,
            AnchorOp::Dense { .. } | AnchorOp::BatchMatmul { .. } | AnchorOp::Conv2d { .. }
        );
        let naive_bytes = sg.bytes_read() + sg.bytes_written();
        let traffic = if is_compute_op {
            (4.0 * flops / (2.0 * beff)).max(naive_bytes)
        } else {
            naive_bytes
        };

        let eff_u = unroll_efficiency(p.quirk_seed, spec.unroll_step);
        let t_compute = flops / (peak * warp_eff * eff_t * occupancy.max(0.02) * eff_u);
        let t_mem = traffic / (p.dram_gbps * 1e9 * occupancy.max(0.1).sqrt());
        t_compute.max(t_mem) + p.launch_overhead_us * 1e-6
    }
}

/// Platform-preferred `auto_unroll_max_step` (one of Ansor's {0, 16, 64, 512}).
pub fn preferred_unroll(quirk_seed: u64) -> i64 {
    [16, 64, 512][(splitmix(quirk_seed) % 3) as usize]
}

fn unroll_efficiency(quirk_seed: u64, step: i64) -> f64 {
    let pref = preferred_unroll(quirk_seed);
    if step == pref {
        1.0
    } else if step == 0 {
        0.86
    } else {
        let dist = ((step.max(1) as f64).log2() - (pref as f64).log2()).abs();
        (1.0 - 0.035 * dist).clamp(0.85, 1.0)
    }
}

/// Small multiplicative preference for particular inner-tile parities,
/// distinct per platform — part of the hardware domain gap.
fn tile_parity_quirk(quirk_seed: u64, spec: &ProgramSpec) -> f64 {
    let pref = 1 << (splitmix(quirk_seed.rotate_left(17)) % 3 + 2); // 4, 8 or 16
    let mut matches = 0usize;
    let mut total = 0usize;
    for a in spec.spatial_axes() {
        total += 1;
        if a.inner() % pref == 0 {
            matches += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        0.94 + 0.06 * matches as f64 / total as f64
    }
}

/// The two innermost-level blocking tiles of the two largest spatial axes:
/// `(l2_tile_a, l2_tile_b, l1_tile_a, l1_tile_b)`.
fn blocking_tiles(spec: &ProgramSpec) -> (f64, f64, f64, f64) {
    let mut axes: Vec<_> = spec.spatial_axes().collect();
    axes.sort_by_key(|a| std::cmp::Reverse(a.extent));
    let pick = |i: usize, levels: usize| -> f64 {
        axes.get(i)
            .map(|a| a.inner_product(levels) as f64)
            .unwrap_or(1.0)
    };
    (pick(0, 3), pick(1, 3), pick(0, 2), pick(1, 2))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Deterministic log-normal-ish noise factor with amplitude `sigma`.
fn deterministic_noise(seed: u64, sigma: f64) -> f64 {
    let u1 = (splitmix(seed) >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (splitmix(seed ^ 0xABCDEF) >> 11) as f64 / (1u64 << 53) as f64;
    let z = (-2.0 * (u1.max(1e-12)).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (1.0 + sigma * z).clamp(0.85, 1.15)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::lower::lower;
    use tlp_schedule::{ConcretePrimitive, PrimitiveKind, ScheduleSequence};

    fn dense_sg() -> Subgraph {
        Subgraph::new(
            "d",
            AnchorOp::Dense {
                m: 512,
                n: 512,
                k: 512,
            },
        )
    }

    /// A reasonable CPU schedule for the dense subgraph.
    fn good_schedule() -> ScheduleSequence {
        vec![
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["i"])
                .with_ints([512, 4, 2, 8]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["j"])
                .with_ints([512, 4, 2, 16]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["k"])
                .with_ints([512, 16]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.0", "j.0"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.0@j.0"])
                .with_extras(["parallel"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["j.3"])
                .with_extras(["vectorize"]),
            ConcretePrimitive::new(PrimitiveKind::CacheWrite, "dense"),
            ConcretePrimitive::new(PrimitiveKind::Pragma, "dense")
                .with_ints([64])
                .with_extras(["auto_unroll_max_step"]),
        ]
        .into_iter()
        .collect()
    }

    fn lat(p: &Platform, seq: &ScheduleSequence) -> f64 {
        let sg = dense_sg();
        let spec = lower(&sg, seq).unwrap();
        Simulator::new().latency(p, &sg, &spec, seq.fingerprint())
    }

    #[test]
    fn deterministic() {
        let p = Platform::i7_10510u();
        let s = good_schedule();
        assert_eq!(lat(&p, &s), lat(&p, &s));
    }

    #[test]
    fn vectorization_helps() {
        let p = Platform::i7_10510u();
        let good = good_schedule();
        let unvectorized: ScheduleSequence = good
            .iter()
            .filter(|pr| !pr.extras.iter().any(|e| e == "vectorize"))
            .cloned()
            .collect();
        assert!(lat(&p, &good) * 2.0 < lat(&p, &unvectorized));
    }

    #[test]
    fn parallelism_helps() {
        let p = Platform::platinum_8272();
        let good = good_schedule();
        let serial: ScheduleSequence = good
            .iter()
            .filter(|pr| !pr.extras.iter().any(|e| e == "parallel"))
            .cloned()
            .collect();
        assert!(lat(&p, &good) * 4.0 < lat(&p, &serial));
    }

    #[test]
    fn faster_hardware_is_faster() {
        let s = good_schedule();
        assert!(lat(&Platform::platinum_8272(), &s) < lat(&Platform::i7_10510u(), &s));
    }

    #[test]
    fn oversized_tiles_thrash_cache() {
        let p = Platform::i7_10510u();
        let mut huge = good_schedule();
        let prims: Vec<_> = huge
            .iter()
            .map(|pr| {
                let mut pr = pr.clone();
                if pr.kind == PrimitiveKind::Split && pr.loop_vars[0] == "k" {
                    pr.ints = vec![512, 512];
                }
                if pr.kind == PrimitiveKind::Split && pr.loop_vars[0] == "i" {
                    pr.ints = vec![512, 1, 1, 256];
                }
                pr
            })
            .collect();
        huge = prims.into_iter().collect();
        assert!(lat(&p, &good_schedule()) < lat(&p, &huge));
    }

    #[test]
    fn gpu_binding_required_for_performance() {
        let p = Platform::tesla_t4();
        let sg = dense_sg();
        let bound: ScheduleSequence = vec![
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["i"])
                .with_ints([512, 8]),
            ConcretePrimitive::new(PrimitiveKind::Split, "dense")
                .with_loops(["j"])
                .with_ints([512, 32]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.0", "j.0"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.0@j.0"])
                .with_extras(["blockIdx.x"]),
            ConcretePrimitive::new(PrimitiveKind::Fuse, "dense").with_loops(["i.1", "j.1"]),
            ConcretePrimitive::new(PrimitiveKind::Annotation, "dense")
                .with_loops(["i.1@j.1"])
                .with_extras(["threadIdx.x"]),
            ConcretePrimitive::new(PrimitiveKind::CacheRead, "dense"),
        ]
        .into_iter()
        .collect();
        let unbound = ScheduleSequence::new();
        let spec_b = lower(&sg, &bound).unwrap();
        let spec_u = lower(&sg, &unbound).unwrap();
        let sim = Simulator::new();
        let lb = sim.latency(&p, &sg, &spec_b, bound.fingerprint());
        let lu = sim.latency(&p, &sg, &spec_u, unbound.fingerprint());
        assert!(lb * 10.0 < lu, "bound {lb} vs unbound {lu}");
    }

    #[test]
    fn platforms_prefer_different_unrolls() {
        // At least two of the CPU platforms must disagree on the preferred
        // unroll step — this is a deliberate domain gap.
        let prefs: Vec<i64> = Platform::all_cpus()
            .iter()
            .map(|p| preferred_unroll(p.quirk_seed))
            .collect();
        assert!(prefs.iter().any(|&x| x != prefs[0]), "prefs {prefs:?}");
    }

    #[test]
    fn noise_is_small_and_centered() {
        let mut acc = 0.0;
        for i in 0..1000u64 {
            let f = deterministic_noise(i, 0.02);
            assert!((0.85..=1.15).contains(&f));
            acc += f;
        }
        let mean = acc / 1000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
