//! Simulated wall-clock accounting for end-to-end search experiments.
//!
//! The paper's search-based metrics (Figs. 10–13) compare *search time*.
//! Measuring a tensor program on hardware takes hundreds of milliseconds
//! (paper §1: compilation, loading, repeated execution, cache flushing);
//! cost-model queries take micro- to milliseconds. This module charges a
//! calibrated simulated duration per hardware measurement and lets callers
//! add really-measured model-inference time, yielding comparable
//! search-time curves on a machine without the testbed.

use serde::{Deserialize, Serialize};

/// Cost parameters for one hardware measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasureCost {
    /// Fixed per-program compile + load time, seconds.
    pub compile_s: f64,
    /// Number of repeated executions per measurement.
    pub repeats: u32,
    /// Fixed per-repeat overhead (cache flush, sync), seconds.
    pub per_repeat_overhead_s: f64,
}

impl MeasureCost {
    /// The paper's CPU measurement pipeline: compile + load + repeated
    /// execution with cache flushes (≈2 s per program end to end).
    pub fn cpu() -> Self {
        MeasureCost {
            compile_s: 0.6,
            repeats: 12,
            per_repeat_overhead_s: 0.12,
        }
    }

    /// The GPU pipeline (longer compiles, RPC transfers, device sync).
    pub fn gpu() -> Self {
        MeasureCost {
            compile_s: 1.0,
            repeats: 10,
            per_repeat_overhead_s: 0.15,
        }
    }

    /// Total simulated seconds to measure one program of latency `lat_s`.
    pub fn measurement_seconds(&self, lat_s: f64) -> f64 {
        self.compile_s + self.repeats as f64 * (lat_s + self.per_repeat_overhead_s)
    }

    /// Simulated seconds of an attempt that failed before running: only the
    /// compile + load stage was paid.
    pub fn compile_only_seconds(&self) -> f64 {
        self.compile_s
    }
}

/// Accumulates simulated and real time during a tuning run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    /// Simulated seconds (hardware measurements).
    pub simulated_s: f64,
    /// Really elapsed seconds added by the caller (model inference,
    /// feature extraction).
    pub real_s: f64,
}

impl SimClock {
    /// Creates a zeroed clock.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Charges one hardware measurement.
    pub fn charge_measurement(&mut self, cost: &MeasureCost, latency_s: f64) {
        self.simulated_s += cost.measurement_seconds(latency_s);
    }

    /// Charges an explicit simulated duration (failed attempts, timeout
    /// budgets, retry backoff — anything that is not one clean measurement).
    pub fn charge_simulated(&mut self, seconds: f64) {
        self.simulated_s += seconds;
    }

    /// Charges really-elapsed time (e.g. cost-model inference).
    pub fn charge_real(&mut self, seconds: f64) {
        self.real_s += seconds;
    }

    /// Total search time: simulated plus real components.
    pub fn total_s(&self) -> f64 {
        self.simulated_s + self.real_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_cost_dominated_by_overheads_for_fast_kernels() {
        let c = MeasureCost::cpu();
        let t = c.measurement_seconds(1e-4);
        assert!(t > 1.5 && t < 3.0, "got {t}");
    }

    #[test]
    fn clock_accumulates() {
        let mut clk = SimClock::new();
        clk.charge_measurement(&MeasureCost::cpu(), 0.001);
        clk.charge_measurement(&MeasureCost::cpu(), 0.001);
        clk.charge_real(0.5);
        assert!(clk.simulated_s > 0.4);
        assert!((clk.total_s() - clk.simulated_s - 0.5).abs() < 1e-12);
    }
}
