#!/bin/bash
{
echo "# cargo bench --workspace (TLP_SCALE=test for the quick verification sweep;"
echo "# the full-scale per-table results live in bench_logs/*.log and target/tlp-results/*.json,"
echo "# recorded in EXPERIMENTS.md)"
TLP_SCALE=test cargo bench --workspace 2>&1
echo "BENCH_SWEEP_DONE"
} | tee /root/repo/bench_output.txt
