#!/bin/bash
# Runs every paper-table/figure bench sequentially, logging to bench_logs/.
set -u
cd /root/repo
mkdir -p bench_logs
for b in table1_embedding_sizes fig6_seq_len_distribution table_uniqueness \
         table3_loss_backbone table4_feature_crop table_arch_ablation \
         table5_vs_tenset_mlp table6_mtl_cpu table7_mtl_gpu table9_cross_arch \
         fig9_mtl_data_size table8_transfer table_substrate_ablation \
         fig11_tuning_curves fig10_tuning_time fig12_speedup_vs_tenset \
         fig13_speedup_vs_ansor serving_load serving_fleet; do
  echo "=== RUNNING $b ($(date +%H:%M:%S)) ==="
  cargo bench -p tlp-bench --bench "$b" >bench_logs/$b.log 2>&1
  echo "=== DONE $b (exit $?) ==="
done
echo "=== SUITE COMPLETE ==="
